package core

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// Pruning-mask constructors (§III-A(e)). A mask is a flattened Boolean
// array shaped like the block: true keeps the coefficient at that
// intrablock position. Because the transform consolidates low spatial
// frequencies into low coordinates, masks that keep the low-coordinate
// corner act as low-pass filters.

// KeepAll returns a mask that keeps every coefficient (equivalent to a
// nil mask, but explicit).
func KeepAll(blockShape []int) []bool {
	m := make([]bool, tensor.Prod(blockShape))
	for i := range m {
		m[i] = true
	}
	return m
}

// KeepLowFrequency returns a mask keeping the `fraction` of coefficients
// with the smallest coordinate sum (lowest combined spatial frequency),
// always including the first coefficient. fraction must be in (0, 1].
// With fraction = 0.5 this is the paper's "pruning half the indices"
// configuration that yields the ≈10.66 ratio example.
func KeepLowFrequency(blockShape []int, fraction float64) ([]bool, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("core: keep fraction %g out of (0, 1]", fraction)
	}
	vol := tensor.Prod(blockShape)
	keepCount := int(fraction * float64(vol))
	if keepCount < 1 {
		keepCount = 1
	}
	type posFreq struct {
		pos, freq int
	}
	pf := make([]posFreq, 0, vol)
	idx := make([]int, len(blockShape))
	pos := 0
	for {
		f := 0
		for _, c := range idx {
			f += c
		}
		pf = append(pf, posFreq{pos, f})
		pos++
		if !tensor.NextIndex(idx, blockShape) {
			break
		}
	}
	sort.SliceStable(pf, func(i, j int) bool {
		if pf[i].freq != pf[j].freq {
			return pf[i].freq < pf[j].freq
		}
		return pf[i].pos < pf[j].pos
	})
	m := make([]bool, vol)
	for i := 0; i < keepCount; i++ {
		m[pf[i].pos] = true
	}
	m[0] = true
	return m, nil
}

// DropHighCorner returns a mask that prunes the hypercubic corner of the
// given side length at the highest coordinates of each dimension — the
// Blaz-style pruning of §II-A(c) (Blaz drops the 6×6 square in the
// higher-index corner of its 8×8 blocks).
func DropHighCorner(blockShape []int, side int) ([]bool, error) {
	for _, e := range blockShape {
		if side > e {
			return nil, fmt.Errorf("core: corner side %d exceeds block extent %d", side, e)
		}
	}
	if side < 0 {
		return nil, fmt.Errorf("core: negative corner side %d", side)
	}
	vol := tensor.Prod(blockShape)
	m := make([]bool, vol)
	idx := make([]int, len(blockShape))
	pos := 0
	for {
		inCorner := true
		for d, c := range idx {
			if c < blockShape[d]-side {
				inCorner = false
				break
			}
		}
		m[pos] = !inCorner
		pos++
		if !tensor.NextIndex(idx, blockShape) {
			break
		}
	}
	return m, nil
}

// KeptFraction returns the fraction of coefficients a mask keeps.
func KeptFraction(mask []bool) float64 {
	if len(mask) == 0 {
		return 1
	}
	kept := 0
	for _, k := range mask {
		if k {
			kept++
		}
	}
	return float64(kept) / float64(len(mask))
}
