package core

import (
	"math"
	"testing"

	"repro/internal/scalar"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/transform"
)

// lossless64 returns a compressor whose only loss is binning at int16 —
// float64 storage so float rounding is negligible.
func lossless64(t *testing.T, blockShape ...int) *Compressor {
	s := DefaultSettings(blockShape...)
	s.FloatType = scalar.Float64
	return mustCompressor(t, s)
}

// relClose reports |a-b| ≤ tol·(1+|b|).
func relClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(b))
}

// --- Table I: operations with "none" as their source of error must agree
// with decompress-then-operate exactly (up to float64 roundoff). ---

func TestTableINegationExact(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(1, 16, 16)
	a := compress(t, c, x)
	na, err := c.Negate(a)
	if err != nil {
		t.Fatal(err)
	}
	want := decompress(t, c, a).Neg()
	got := decompress(t, c, na)
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Errorf("negation is not exact: L∞ = %g", d)
	}
	// Negation twice is the identity on the compressed form.
	nna, _ := c.Negate(na)
	for i := range a.F {
		if nna.F[i] != a.F[i] {
			t.Fatal("negate∘negate should be the identity on F")
		}
	}
}

func TestTableIMulScalarExact(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(2, 16, 16)
	a := compress(t, c, x)
	for _, k := range []float64{2.5, -3, 0, 1e-3} {
		ma, err := c.MulScalar(a, k)
		if err != nil {
			t.Fatal(err)
		}
		want := decompress(t, c, a).Scale(k)
		got := decompress(t, c, ma)
		if d := got.MaxAbsDiff(want); d > 1e-12*math.Abs(k) {
			t.Errorf("×%g: L∞ = %g", k, d)
		}
	}
}

func TestTableIDotExact(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(3, 16, 16)
	y := randomTensor(4, 16, 16)
	a, b := compress(t, c, x), compress(t, c, y)
	got, err := c.Dot(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := stats.Dot(decompress(t, c, a), decompress(t, c, b))
	if !relClose(got, want, 1e-10) {
		t.Errorf("Dot: compressed %g vs decompressed %g", got, want)
	}
}

func TestTableIMeanExact(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(5, 16, 16)
	a := compress(t, c, x)
	got, err := c.Mean(a)
	if err != nil {
		t.Fatal(err)
	}
	want := stats.Mean(decompress(t, c, a))
	if !relClose(got, want, 1e-10) {
		t.Errorf("Mean: compressed %g vs decompressed %g", got, want)
	}
}

func TestTableIMeanExactWithPadding(t *testing.T) {
	// 18×10 with 4×4 blocks pads to 20×12. Binning error makes the padded
	// zeros reconstruct to small nonzero values that the compressed-space
	// sum sees but the cropped reference does not, so agreement here is up
	// to binning error (≈N/(2r+1) per padded cell), not float roundoff.
	c := lossless64(t, 4, 4)
	x := randomTensor(6, 18, 10)
	a := compress(t, c, x)
	got, err := c.Mean(a)
	if err != nil {
		t.Fatal(err)
	}
	want := stats.Mean(decompress(t, c, a))
	if !relClose(got, want, 1e-5) {
		t.Errorf("padded Mean: compressed %g vs decompressed %g", got, want)
	}
}

func TestTableICovarianceVarianceExact(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(7, 16, 16)
	y := randomTensor(8, 16, 16)
	a, b := compress(t, c, x), compress(t, c, y)
	dx, dy := decompress(t, c, a), decompress(t, c, b)

	cov, err := c.Covariance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := stats.Covariance(dx, dy); !relClose(cov, want, 1e-9) {
		t.Errorf("Covariance: %g vs %g", cov, want)
	}
	v, err := c.Variance(a)
	if err != nil {
		t.Fatal(err)
	}
	if want := stats.Variance(dx); !relClose(v, want, 1e-9) {
		t.Errorf("Variance: %g vs %g", v, want)
	}
	sd, err := c.StdDev(a)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Sqrt(stats.Variance(dx)); !relClose(sd, want, 1e-9) {
		t.Errorf("StdDev: %g vs %g", sd, want)
	}
}

func TestTableICovarianceExactWithPadding(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(9, 13, 11)
	y := randomTensor(10, 13, 11)
	a, b := compress(t, c, x), compress(t, c, y)
	cov, err := c.Covariance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Up to binning error in the padded cells; see TestTableIMeanExactWithPadding.
	want := stats.Covariance(decompress(t, c, a), decompress(t, c, b))
	if !relClose(cov, want, 1e-5) {
		t.Errorf("padded Covariance: %g vs %g", cov, want)
	}
}

func TestTableIL2NormExact(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(11, 16, 16)
	a := compress(t, c, x)
	got, err := c.L2Norm(a)
	if err != nil {
		t.Fatal(err)
	}
	want := stats.L2Norm(decompress(t, c, a))
	if !relClose(got, want, 1e-10) {
		t.Errorf("L2Norm: %g vs %g", got, want)
	}
}

func TestTableICosineSimilarityExact(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(12, 16, 16)
	y := randomTensor(13, 16, 16)
	a, b := compress(t, c, x), compress(t, c, y)
	got, err := c.CosineSimilarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := stats.CosineSimilarity(decompress(t, c, a), decompress(t, c, b))
	if !relClose(got, want, 1e-10) {
		t.Errorf("CosineSimilarity: %g vs %g", got, want)
	}
	// Self-similarity is 1.
	self, _ := c.CosineSimilarity(a, a)
	if math.Abs(self-1) > 1e-12 {
		t.Errorf("cos(a,a) = %g", self)
	}
}

func TestTableISSIMExact(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := smoothTensor(14, 16, 16).Apply(func(v float64) float64 { return (v + 3) / 6 })
	y := smoothTensor(15, 16, 16).Apply(func(v float64) float64 { return (v + 3) / 6 })
	a, b := compress(t, c, x), compress(t, c, y)
	got, err := c.StructuralSimilarity(a, b, DefaultSSIMOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := stats.SSIM(decompress(t, c, a), decompress(t, c, b), 1e-4, 9e-4)
	if !relClose(got, want, 1e-9) {
		t.Errorf("SSIM: %g vs %g", got, want)
	}
	// Self-SSIM is 1.
	self, _ := c.StructuralSimilarity(a, a, DefaultSSIMOptions())
	if math.Abs(self-1) > 1e-9 {
		t.Errorf("SSIM(a,a) = %g", self)
	}
}

// --- Table I: "rebinning" operations have bounded extra error ---

func TestAdditionRebinErrorBounded(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(16, 16, 16)
	y := randomTensor(17, 16, 16)
	a, b := compress(t, c, x), compress(t, c, y)
	sum, err := c.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := decompress(t, c, sum)
	want := decompress(t, c, a).Add(decompress(t, c, b))
	// Rebinning error per coefficient ≤ N_k/(2r+1); over a block the L∞
	// error is ≤ √(∏i)·N_k/(2r+1). Just check against a global bound.
	r := float64(scalar.Int16.Radius())
	maxN := 0.0
	for _, n := range sum.N {
		if n > maxN {
			maxN = n
		}
	}
	bound := 4.0 /*√16*/ * maxN / (2*r + 1)
	if d := got.MaxAbsDiff(want); d > bound {
		t.Errorf("Add rebin error %g exceeds bound %g", d, bound)
	}
}

func TestAdditionOfOppositeIsZero(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(18, 16, 16)
	a := compress(t, c, x)
	na, _ := c.Negate(a)
	z, err := c.Add(a, na)
	if err != nil {
		t.Fatal(err)
	}
	if got := decompress(t, c, z); got.AbsMax() != 0 {
		t.Errorf("a + (−a) decompressed to L∞ %g, want 0", got.AbsMax())
	}
}

func TestSubtract(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(19, 16, 16)
	y := randomTensor(20, 16, 16)
	a, b := compress(t, c, x), compress(t, c, y)
	diff, err := c.Subtract(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := decompress(t, c, diff)
	want := decompress(t, c, a).Sub(decompress(t, c, b))
	if d := got.MaxAbsDiff(want); d > 1e-3 {
		t.Errorf("Subtract error %g", d)
	}
}

func TestAddScalar(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(21, 16, 16)
	a := compress(t, c, x)
	for _, k := range []float64{1.5, -2, 100} {
		sa, err := c.AddScalar(a, k)
		if err != nil {
			t.Fatal(err)
		}
		got := decompress(t, c, sa)
		want := decompress(t, c, a).AddScalar(k)
		// Rebinning error scales with the new N.
		maxN := 0.0
		for _, n := range sa.N {
			if n > maxN {
				maxN = n
			}
		}
		bound := 4 * maxN / (2*32767.0 + 1)
		if d := got.MaxAbsDiff(want); d > bound {
			t.Errorf("AddScalar(%g) error %g exceeds bound %g", k, d, bound)
		}
	}
}

func TestAddScalarMeanShift(t *testing.T) {
	// Mean(A + x) = Mean(A) + x, computed wholly in compressed space.
	c := lossless64(t, 4, 4)
	x := randomTensor(22, 16, 16)
	a := compress(t, c, x)
	m0, _ := c.Mean(a)
	sa, err := c.AddScalar(a, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := c.Mean(sa)
	if math.Abs(m1-(m0+2.5)) > 1e-3 {
		t.Errorf("mean shifted by %g, want 2.5", m1-m0)
	}
}

func TestMulScalarThenL2(t *testing.T) {
	// ‖k·A‖ = |k|·‖A‖ holds exactly in compressed space.
	c := lossless64(t, 4, 4)
	x := randomTensor(23, 16, 16)
	a := compress(t, c, x)
	n0, _ := c.L2Norm(a)
	ma, _ := c.MulScalar(a, -2.5)
	n1, _ := c.L2Norm(ma)
	if !relClose(n1, 2.5*n0, 1e-12) {
		t.Errorf("‖-2.5·A‖ = %g, want %g", n1, 2.5*n0)
	}
}

// --- block-wise operations ---

func TestBlockMeansMatchReference(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(24, 16, 16)
	a := compress(t, c, x)
	got, err := c.BlockMeans(a)
	if err != nil {
		t.Fatal(err)
	}
	want := stats.BlockMeans(decompress(t, c, a), []int{4, 4})
	if !got.SameShape(want) {
		t.Fatalf("BlockMeans shape %v vs %v", got.Shape(), want.Shape())
	}
	if d := got.MaxAbsDiff(want); d > 1e-10 {
		t.Errorf("BlockMeans L∞ %g", d)
	}
}

func TestBlockVariancesMatchReference(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(25, 16, 16)
	a := compress(t, c, x)
	got, err := c.BlockVariances(a)
	if err != nil {
		t.Fatal(err)
	}
	y := decompress(t, c, a)
	yb := tensor.BlockTensor(y, []int{4, 4})
	for k := 0; k < yb.NumBlocks(); k++ {
		blk := yb.Block(k)
		mu := 0.0
		for _, v := range blk {
			mu += v
		}
		mu /= float64(len(blk))
		va := 0.0
		for _, v := range blk {
			va += (v - mu) * (v - mu)
		}
		va /= float64(len(blk))
		if !relClose(got.Data()[k], va, 1e-9) {
			t.Errorf("block %d variance %g vs %g", k, got.Data()[k], va)
		}
	}
}

// --- Wasserstein ---

func TestWassersteinIdenticalArraysIsZero(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(26, 16, 16)
	a := compress(t, c, x)
	d, err := c.WassersteinDistance(a, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("W(a,a) = %g, want 0", d)
	}
}

func TestWassersteinMatchesBlockMeanReference(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(27, 16, 16)
	y := randomTensor(28, 16, 16)
	a, b := compress(t, c, x), compress(t, c, y)
	for _, p := range []float64{1, 2, 8} {
		got, err := c.WassersteinDistance(a, b, p)
		if err != nil {
			t.Fatal(err)
		}
		ma := stats.BlockMeans(decompress(t, c, a), []int{4, 4})
		mb := stats.BlockMeans(decompress(t, c, b), []int{4, 4})
		want := stats.Wasserstein(ma.Data(), mb.Data(), p)
		if !relClose(got, want, 1e-9) {
			t.Errorf("p=%g: %g vs %g", p, got, want)
		}
	}
}

func TestWassersteinInvalidOrder(t *testing.T) {
	c := lossless64(t, 4, 4)
	a := compress(t, c, randomTensor(29, 8, 8))
	if _, err := c.WassersteinDistance(a, a, 0); err == nil {
		t.Error("p = 0 should fail")
	}
	if _, err := c.WassersteinDistance(a, a, -1); err == nil {
		t.Error("p < 0 should fail")
	}
}

func TestWassersteinBlockSizeControlsApproximation(t *testing.T) {
	// §IV-B: smaller blocks give a finer approximation; one-element blocks
	// are exact. Compare against the exact (element-wise) distance.
	x := smoothTensor(30, 32, 32)
	y := smoothTensor(31, 32, 32)
	exact := stats.Wasserstein(x.Data(), y.Data(), 2)
	var errs []float64
	for _, side := range []int{1, 4, 16} {
		s := DefaultSettings(side, side)
		s.FloatType = scalar.Float64
		s.IndexType = scalar.Int32
		c := mustCompressor(t, s)
		a, b := compress(t, c, x), compress(t, c, y)
		d, err := c.WassersteinDistance(a, b, 2)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, math.Abs(d-exact))
	}
	if errs[0] > 1e-9 {
		t.Errorf("1×1 blocks should be exact, error %g", errs[0])
	}
	if errs[1] >= errs[2]+1e-12 && errs[2] > 1e-9 {
		// Expect larger blocks to be at least as approximate; tolerate ties.
		t.Logf("approximation errors: %v (non-monotone but tolerated)", errs)
	}
}

// --- mask-dependent failures ---

func TestOpsRequireFirstCoefficient(t *testing.T) {
	mask := make([]bool, 16)
	mask[1] = true // keep only coefficient 1; the mean coefficient is gone
	s := DefaultSettings(4, 4)
	s.Mask = mask
	c := mustCompressor(t, s)
	a := compress(t, c, randomTensor(32, 8, 8))
	if _, err := c.Mean(a); err == nil {
		t.Error("Mean without first coefficient should fail")
	}
	if _, err := c.Covariance(a, a); err == nil {
		t.Error("Covariance without first coefficient should fail")
	}
	if _, err := c.BlockMeans(a); err == nil {
		t.Error("BlockMeans without first coefficient should fail")
	}
	if _, err := c.WassersteinDistance(a, a, 2); err == nil {
		t.Error("Wasserstein without first coefficient should fail")
	}
	if _, err := c.AddScalar(a, 1); err == nil {
		t.Error("AddScalar without first coefficient should fail")
	}
	// Dot and L2 do not need the first coefficient.
	if _, err := c.Dot(a, a); err != nil {
		t.Errorf("Dot should work without first coefficient: %v", err)
	}
}

func TestBinaryOpsValidatePairs(t *testing.T) {
	c := lossless64(t, 4, 4)
	a := compress(t, c, randomTensor(33, 8, 8))
	b := compress(t, c, randomTensor(34, 12, 8))
	if _, err := c.Add(a, b); err == nil {
		t.Error("Add with mismatched shapes should fail")
	}
	if _, err := c.Dot(a, b); err == nil {
		t.Error("Dot with mismatched shapes should fail")
	}
	other := mustCompressor(t, DefaultSettings(4, 4)) // float32 settings
	if _, err := other.Negate(a); err == nil {
		t.Error("op with foreign compressor should fail")
	}
}

// --- padding-sensitive scalar ops on non-divisible shapes ---

func TestScalarOpsOnPaddedShapes(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(35, 15, 9) // pads to 16×12
	a := compress(t, c, x)
	dx := decompress(t, c, a)
	// Agreement up to binning error in padded cells (see
	// TestTableIMeanExactWithPadding).
	if got, _ := c.Mean(a); !relClose(got, stats.Mean(dx), 1e-5) {
		t.Errorf("padded Mean: %g vs %g", got, stats.Mean(dx))
	}
	if got, _ := c.Variance(a); !relClose(got, stats.Variance(dx), 1e-5) {
		t.Errorf("padded Variance: %g vs %g", got, stats.Variance(dx))
	}
	if got, _ := c.L2Norm(a); !relClose(got, stats.L2Norm(dx), 1e-5) {
		t.Errorf("padded L2: %g vs %g", got, stats.L2Norm(dx))
	}
}

func TestIdentityTransformDisablesMeanFamily(t *testing.T) {
	// The identity transform's first basis vector is e₀, not the
	// constant, so the mean-family operations must refuse rather than
	// silently return data[0]-based nonsense.
	s := DefaultSettings(4, 4)
	s.Transform = transform.Identity
	c := mustCompressor(t, s)
	a := compress(t, c, randomTensor(120, 8, 8))
	if _, err := c.Mean(a); err == nil {
		t.Error("Mean under identity transform should fail")
	}
	if _, err := c.Variance(a); err == nil {
		t.Error("Variance under identity transform should fail")
	}
	if _, err := c.WassersteinDistance(a, a, 2); err == nil {
		t.Error("Wasserstein under identity transform should fail")
	}
	if _, err := c.AddScalar(a, 1); err == nil {
		t.Error("AddScalar under identity transform should fail")
	}
	// Orthonormality-based ops still work (identity is orthonormal).
	if _, err := c.Dot(a, a); err != nil {
		t.Errorf("Dot under identity transform should work: %v", err)
	}
	if _, err := c.L2Norm(a); err != nil {
		t.Errorf("L2Norm under identity transform should work: %v", err)
	}
}
