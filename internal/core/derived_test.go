package core

import (
	"math"
	"testing"

	"repro/internal/scalar"
	"repro/internal/stats"
)

func TestL2DistanceExact(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(41, 16, 16)
	y := randomTensor(42, 16, 16)
	a, b := compress(t, c, x), compress(t, c, y)
	got, err := c.L2Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := decompress(t, c, a).Sub(decompress(t, c, b)).Norm2()
	if !relClose(got, want, 1e-9) {
		t.Errorf("L2Distance %g vs %g", got, want)
	}
	// Against the rebinning route: the expansion-based distance must be
	// at least as accurate, and self-distance must be 0.
	self, _ := c.L2Distance(a, a)
	if self != 0 {
		t.Errorf("L2Distance(a,a) = %g", self)
	}
}

func TestMSEAndPSNR(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(43, 16, 16)
	y := randomTensor(44, 16, 16)
	a, b := compress(t, c, x), compress(t, c, y)
	mse, err := c.MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dx, dy := decompress(t, c, a), decompress(t, c, b)
	want := 0.0
	for i := range dx.Data() {
		d := dx.Data()[i] - dy.Data()[i]
		want += d * d
	}
	want /= float64(dx.Len())
	if !relClose(mse, want, 1e-9) {
		t.Errorf("MSE %g vs %g", mse, want)
	}
	psnr, err := c.PSNR(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wantP := 10 * math.Log10(1/want); !relClose(psnr, wantP, 1e-9) {
		t.Errorf("PSNR %g vs %g", psnr, wantP)
	}
	// Identical arrays → +Inf PSNR.
	inf, _ := c.PSNR(a, a, 1)
	if !math.IsInf(inf, 1) {
		t.Errorf("PSNR(a,a) = %g, want +Inf", inf)
	}
}

func TestNormalizedRMSE(t *testing.T) {
	c := lossless64(t, 4, 4)
	x := randomTensor(45, 16, 16)
	y := randomTensor(46, 16, 16)
	a, b := compress(t, c, x), compress(t, c, y)
	nr, err := c.NormalizedRMSE(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := c.MSE(a, b)
	if !relClose(nr, math.Sqrt(mse)/2, 1e-12) {
		t.Errorf("NormalizedRMSE %g", nr)
	}
	if _, err := c.NormalizedRMSE(a, b, 0); err == nil {
		t.Error("zero range should fail")
	}
	if _, err := c.NormalizedRMSE(a, b, -1); err == nil {
		t.Error("negative range should fail")
	}
}

func TestDerivedOpsValidatePairs(t *testing.T) {
	c := lossless64(t, 4, 4)
	a := compress(t, c, randomTensor(47, 8, 8))
	b := compress(t, c, randomTensor(48, 12, 8))
	if _, err := c.L2Distance(a, b); err == nil {
		t.Error("L2Distance with mismatched shapes should fail")
	}
	if _, err := c.MSE(a, b); err == nil {
		t.Error("MSE with mismatched shapes should fail")
	}
	if _, err := c.PSNR(a, b, 1); err == nil {
		t.Error("PSNR with mismatched shapes should fail")
	}
}

func TestL2DistanceBeatsSubtractRoute(t *testing.T) {
	// The expansion-based distance avoids the Add rebinning error: on
	// near-identical arrays it must be at least as close to the truth as
	// subtract-then-norm.
	s := DefaultSettings(4, 4)
	s.FloatType = scalar.Float64
	s.IndexType = scalar.Int8
	c := mustCompressor(t, s)
	x := smoothTensor(50, 16, 16)
	y := x.Map(func(v float64) float64 { return v + 1e-3 })
	a, b := compress(t, c, x), compress(t, c, y)

	truth := decompress(t, c, a).Sub(decompress(t, c, b)).Norm2()
	direct, err := c.L2Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := c.Subtract(a, b)
	if err != nil {
		t.Fatal(err)
	}
	viaSub, err := c.L2Norm(diff)
	if err != nil {
		t.Fatal(err)
	}
	// The direct expansion is exact w.r.t. the decompressed arrays (up to
	// float64 roundoff); the subtract route may add rebinning error but
	// must stay within a bin width of the truth.
	if errDirect := math.Abs(direct - truth); errDirect > 1e-9*(1+truth) {
		t.Errorf("direct L2 distance error %g should be at roundoff level", errDirect)
	}
	maxN := 0.0
	for _, n := range diff.N {
		if n > maxN {
			maxN = n
		}
	}
	binBound := 4 * maxN / (2*127.0 + 1) * math.Sqrt(float64(diff.OriginalLen()))
	if errSub := math.Abs(viaSub - truth); errSub > binBound+1e-12 {
		t.Errorf("subtract-route error %g exceeds bin bound %g", errSub, binBound)
	}
}

// Ensemble-testing scenario (§VI): distances between many compressed
// snapshots without decompressing any of them.
func TestEnsembleDistanceMatrix(t *testing.T) {
	c := lossless64(t, 4, 4)
	const members = 5
	arrays := make([]*CompressedArray, members)
	refs := make([]float64, 0, members*members)
	for i := range arrays {
		arrays[i] = compress(t, c, smoothTensor(int64(60+i), 32, 32))
	}
	for i := 0; i < members; i++ {
		for j := 0; j < members; j++ {
			d, err := c.L2Distance(arrays[i], arrays[j])
			if err != nil {
				t.Fatal(err)
			}
			refs = append(refs, d)
			// Symmetry and identity.
			dj, _ := c.L2Distance(arrays[j], arrays[i])
			if !relClose(d, dj, 1e-12) {
				t.Fatalf("distance matrix not symmetric at (%d,%d)", i, j)
			}
			if i == j && d != 0 {
				t.Fatalf("diagonal should be zero")
			}
		}
	}
	// Cross-check one off-diagonal entry against the decompressed truth.
	want := stats.L2Norm(decompress(t, c, arrays[0]).Sub(decompress(t, c, arrays[1])))
	if !relClose(refs[1], want, 1e-9) {
		t.Errorf("matrix entry %g vs truth %g", refs[1], want)
	}
}
