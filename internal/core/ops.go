package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Negate implements Algorithm 1: {s, i, N, −F}. No additional error.
func (c *Compressor) Negate(a *CompressedArray) (*CompressedArray, error) {
	if err := c.checkOwned(a); err != nil {
		return nil, err
	}
	out := a.Clone()
	for i, v := range out.F {
		out.F[i] = -v
	}
	return out, nil
}

// Add implements Algorithm 2: element-wise addition of two compressed
// arrays. The sums of specified coefficients are rebinned against the new
// per-block maxima, which is the operation's only source of error beyond
// compression itself (Table I: "rebinning").
func (c *Compressor) Add(a, b *CompressedArray) (*CompressedArray, error) {
	if err := c.checkPair(a, b); err != nil {
		return nil, err
	}
	ca := c.specifiedCoefficients(a)
	cb := c.specifiedCoefficients(b)
	for i := range ca {
		ca[i] += cb[i]
	}
	return c.rebin(a, ca), nil
}

// Subtract returns a − b as Add(a, Negate(b)), the compressed-space
// difference used in the shallow-water experiment (§V-A).
func (c *Compressor) Subtract(a, b *CompressedArray) (*CompressedArray, error) {
	nb, err := c.Negate(b)
	if err != nil {
		return nil, err
	}
	return c.Add(a, nb)
}

// AddScalar implements Algorithm 4: adds x to every element by adding
// x·√(∏i) to each block's first coefficient, then rebinning. Unlike the
// paper's pseudocode, N is recomputed after the addition (the pseudocode
// computes it before, which can push the first index out of range).
// Requires the first coefficient to be kept by the mask.
func (c *Compressor) AddScalar(a *CompressedArray, x float64) (*CompressedArray, error) {
	if err := c.checkOwned(a); err != nil {
		return nil, err
	}
	if c.firstKept() < 0 {
		return nil, errFirstPruned
	}
	K := len(c.keep)
	coeffs := c.specifiedCoefficients(a)
	delta := x * c.sqrtVol
	for k := 0; k < a.NumBlocks(); k++ {
		coeffs[k*K] += delta
	}
	return c.rebin(a, coeffs), nil
}

// MulScalar implements Algorithm 5: {s, i, N ⊙ |x|, F ⊙ sign(x)}.
// No additional error.
func (c *Compressor) MulScalar(a *CompressedArray, x float64) (*CompressedArray, error) {
	if err := c.checkOwned(a); err != nil {
		return nil, err
	}
	out := a.Clone()
	ax := math.Abs(x)
	ft := c.settings.FloatType
	for k := range out.N {
		out.N[k] = ft.Round(out.N[k] * ax)
	}
	if math.Signbit(x) {
		for i, v := range out.F {
			out.F[i] = -v
		}
	}
	return out, nil
}

// Dot implements Algorithm 6: Σ(Ĉ1 ⊙ Ĉ2). Orthonormal transforms preserve
// dot products, so this equals the dot product of the decompressed arrays
// (zero padding contributes nothing). No additional error.
func (c *Compressor) Dot(a, b *CompressedArray) (float64, error) {
	if err := c.checkPair(a, b); err != nil {
		return 0, err
	}
	ca := c.specifiedCoefficients(a)
	cb := c.specifiedCoefficients(b)
	s := 0.0
	for i := range ca {
		s += ca[i] * cb[i]
	}
	return s, nil
}

// blockSums returns the per-block sums of the decompressed array: the
// first coefficient of block k is its mean × √(∏i), so the block sum is
// firstCoeff × √(∏i).
func (c *Compressor) blockSums(a *CompressedArray) []float64 {
	K := len(c.keep)
	r := c.radius
	ft := c.settings.FloatType
	sums := make([]float64, a.NumBlocks())
	for k := range sums {
		first := ft.Round(a.N[k] * float64(a.F[k*K]) / r)
		sums[k] = first * c.sqrtVol
	}
	return sums
}

// Mean implements Algorithm 7 with an exact padding correction. The
// paper's formula mean(Ĉ...1) ⊘ √(∏i) averages over the zero-padded
// domain; since padding is zero the element sum is unchanged, so dividing
// by ∏s instead of ∏(b⊙i) yields the mean of the original array. When
// the shape divides the block shape the two coincide and this is exactly
// Algorithm 7. Requires the first coefficient to be kept.
func (c *Compressor) Mean(a *CompressedArray) (float64, error) {
	if err := c.checkOwned(a); err != nil {
		return 0, err
	}
	if c.firstKept() < 0 {
		return 0, errFirstPruned
	}
	total := 0.0
	for _, s := range c.blockSums(a) {
		total += s
	}
	return total / float64(a.OriginalLen()), nil
}

// Covariance implements Algorithm 8 (population covariance), again with
// the exact padding correction: cov = (Σ Ĉ1⊙Ĉ2 − ΣA·ΣB/n) / n where n =
// ∏s. Without padding this is algebraically identical to the paper's
// centered-coefficient formulation. Requires the first coefficient.
func (c *Compressor) Covariance(a, b *CompressedArray) (float64, error) {
	if err := c.checkPair(a, b); err != nil {
		return 0, err
	}
	if c.firstKept() < 0 {
		return 0, errFirstPruned
	}
	dot, err := c.Dot(a, b)
	if err != nil {
		return 0, err
	}
	sumA, sumB := 0.0, 0.0
	for _, s := range c.blockSums(a) {
		sumA += s
	}
	for _, s := range c.blockSums(b) {
		sumB += s
	}
	n := float64(a.OriginalLen())
	return (dot - sumA*sumB/n) / n, nil
}

// Variance implements Algorithm 9: Covariance(A, A).
func (c *Compressor) Variance(a *CompressedArray) (float64, error) {
	return c.Covariance(a, a)
}

// StdDev returns the standard deviation √Variance(A) (§IV-A8).
func (c *Compressor) StdDev(a *CompressedArray) (float64, error) {
	v, err := c.Variance(a)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// L2Norm implements Algorithm 10: ‖Ĉ‖₂. Orthonormality makes this the L2
// norm of the decompressed array. No additional error.
func (c *Compressor) L2Norm(a *CompressedArray) (float64, error) {
	d, err := c.Dot(a, a)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(d), nil
}

// CosineSimilarity implements Algorithm 11: Dot(A,B) / (‖A‖₂·‖B‖₂).
func (c *Compressor) CosineSimilarity(a, b *CompressedArray) (float64, error) {
	p, err := c.Dot(a, b)
	if err != nil {
		return 0, err
	}
	na, err := c.L2Norm(a)
	if err != nil {
		return 0, err
	}
	nb, err := c.L2Norm(b)
	if err != nil {
		return 0, err
	}
	return p / (na * nb), nil
}

// BlockMeans returns the block-wise mean (§IV-A6): Ĉ...1 ⊘ √(∏i), shaped
// like the block arrangement b. Requires the first coefficient.
func (c *Compressor) BlockMeans(a *CompressedArray) (*tensor.Tensor, error) {
	if err := c.checkOwned(a); err != nil {
		return nil, err
	}
	if c.firstKept() < 0 {
		return nil, errFirstPruned
	}
	vol := float64(tensor.Prod(c.settings.BlockShape))
	sums := c.blockSums(a)
	out := tensor.New(a.Blocks...)
	for k, s := range sums {
		out.Data()[k] = s / vol
	}
	return out, nil
}

// BlockVariances returns the block-wise population variance (§IV-A8): for
// each block, mean of squared coefficients minus squared block mean,
// over the block's ∏i (padded) elements.
func (c *Compressor) BlockVariances(a *CompressedArray) (*tensor.Tensor, error) {
	if err := c.checkOwned(a); err != nil {
		return nil, err
	}
	if c.firstKept() < 0 {
		return nil, errFirstPruned
	}
	K := len(c.keep)
	coeffs := c.specifiedCoefficients(a)
	vol := float64(tensor.Prod(c.settings.BlockShape))
	out := tensor.New(a.Blocks...)
	tensor.ParallelFor(a.NumBlocks(), func(start, end int) {
		for k := start; k < end; k++ {
			energy := 0.0
			for i := 0; i < K; i++ {
				v := coeffs[k*K+i]
				energy += v * v
			}
			mean := coeffs[k*K] / c.sqrtVol // first coeff / √vol
			out.Data()[k] = energy/vol - mean*mean
		}
	})
	return out, nil
}

// SSIMOptions configures StructuralSimilarity (Algorithm 12).
type SSIMOptions struct {
	// LuminanceStabilizer is s_l; defaults to (0.01·L)² with L = 1.
	LuminanceStabilizer float64
	// ContrastStabilizer is s_c; defaults to (0.03·L)² with L = 1.
	ContrastStabilizer float64
	// LuminanceWeight, ContrastWeight, StructureWeight are w_l, w_c, w_s;
	// all default to 1.
	LuminanceWeight, ContrastWeight, StructureWeight float64
}

// DefaultSSIMOptions returns the standard SSIM constants for data in
// [0, 1]: s_l = 1e-4, s_c = 9e-4, unit weights.
func DefaultSSIMOptions() SSIMOptions {
	return SSIMOptions{
		LuminanceStabilizer: 1e-4,
		ContrastStabilizer:  9e-4,
		LuminanceWeight:     1,
		ContrastWeight:      1,
		StructureWeight:     1,
	}
}

// StructuralSimilarity implements Algorithm 12: the global SSIM index
// computed entirely from compressed-space mean, variance and covariance.
func (c *Compressor) StructuralSimilarity(a, b *CompressedArray, opts SSIMOptions) (float64, error) {
	muA, err := c.Mean(a)
	if err != nil {
		return 0, err
	}
	muB, err := c.Mean(b)
	if err != nil {
		return 0, err
	}
	varA, err := c.Variance(a)
	if err != nil {
		return 0, err
	}
	varB, err := c.Variance(b)
	if err != nil {
		return 0, err
	}
	cov, err := c.Covariance(a, b)
	if err != nil {
		return 0, err
	}
	sigA := math.Sqrt(math.Max(varA, 0))
	sigB := math.Sqrt(math.Max(varB, 0))
	sl, sc := opts.LuminanceStabilizer, opts.ContrastStabilizer
	l := (2*muA*muB + sl) / (muA*muA + muB*muB + sl)
	con := (2*sigA*sigB + sc) / (varA + varB + sc)
	str := (cov + sc/2) / (sigA*sigB + sc/2)
	return math.Pow(l, opts.LuminanceWeight) *
		math.Pow(con, opts.ContrastWeight) *
		math.Pow(str, opts.StructureWeight), nil
}

// softmax applies the numerically stable softmax in place.
func softmax(xs []float64) {
	if len(xs) == 0 {
		return
	}
	max := xs[0]
	for _, v := range xs[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range xs {
		xs[i] = math.Exp(v - max)
		sum += xs[i]
	}
	for i := range xs {
		xs[i] /= sum
	}
}

// WassersteinDistance implements Algorithm 13: the approximate p-order
// Wasserstein distance computed from block-wise means. Arrays whose
// block-mean mass does not sum to 1 are first pushed through softmax so
// that both are probability distributions. The approximation error is a
// function of the block size (§IV-B); one-element blocks are exact.
func (c *Compressor) WassersteinDistance(a, b *CompressedArray, p float64) (float64, error) {
	if err := c.checkPair(a, b); err != nil {
		return 0, err
	}
	if p <= 0 {
		return 0, fmt.Errorf("core: Wasserstein order p = %g must be positive", p)
	}
	if c.firstKept() < 0 {
		return 0, errFirstPruned
	}
	ma, err := c.BlockMeans(a)
	if err != nil {
		return 0, err
	}
	mb, err := c.BlockMeans(b)
	if err != nil {
		return 0, err
	}
	return wasserstein1D(ma.Data(), mb.Data(), p), nil
}

// wasserstein1D computes the paper's sorted-coupling distance between two
// equal-length mass vectors, normalizing each through softmax when it is
// not already a probability distribution.
func wasserstein1D(pa, pb []float64, p float64) float64 {
	a := append([]float64(nil), pa...)
	b := append([]float64(nil), pb...)
	if s := sum(a); math.Abs(s-1) > 1e-9 {
		softmax(a)
	}
	if s := sum(b); math.Abs(s-1) > 1e-9 {
		softmax(b)
	}
	sort.Float64s(a)
	sort.Float64s(b)
	acc := 0.0
	for i := range a {
		acc += math.Pow(math.Abs(a[i]-b[i]), p)
	}
	return math.Pow(acc/float64(len(a)), 1/p)
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}
