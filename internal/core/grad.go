package core

import (
	"fmt"
	"math"
)

// Differentiable compressed-space operations. The paper notes that every
// operation except the approximate Wasserstein distance is differentiable,
// "enabling their incorporation into gradient-based optimization
// pipelines" (§IV). PyBlaz gets this from PyTorch autograd; here the
// gradients are analytic, taken with respect to the specified-coefficient
// vector Ĉ of the first argument. Because every scalar operation is a
// smooth function of Ĉ (sums, products, square roots away from zero), the
// gradients below are exact; tests verify them against central finite
// differences.
//
// The coefficient vector is block-major with K kept entries per block,
// exactly the layout of CompressedArray.F scaled by N/r — obtain it with
// Coefficients, perturb or optimize it freely, and rebuild a compressed
// array with FromCoefficients.

// Coefficients returns the specified coefficients Ĉ of a (Algorithm 3) as
// a mutable vector.
func (c *Compressor) Coefficients(a *CompressedArray) ([]float64, error) {
	if err := c.checkOwned(a); err != nil {
		return nil, err
	}
	return c.specifiedCoefficients(a), nil
}

// FromCoefficients builds a compressed array with the same geometry as
// template from a coefficient vector (rebinned against fresh per-block
// maxima). It inverts Coefficients up to binning error.
func (c *Compressor) FromCoefficients(template *CompressedArray, coeffs []float64) (*CompressedArray, error) {
	if err := c.checkOwned(template); err != nil {
		return nil, err
	}
	if len(coeffs) != len(template.F) {
		return nil, fmt.Errorf("core: coefficient vector length %d, want %d", len(coeffs), len(template.F))
	}
	return c.rebin(template, coeffs), nil
}

// DotValueGrad returns ⟨a, b⟩ and ∂⟨a,b⟩/∂Ĉa = Ĉb.
func (c *Compressor) DotValueGrad(a, b *CompressedArray) (float64, []float64, error) {
	if err := c.checkPair(a, b); err != nil {
		return 0, nil, err
	}
	ca := c.specifiedCoefficients(a)
	cb := c.specifiedCoefficients(b)
	v := 0.0
	for i := range ca {
		v += ca[i] * cb[i]
	}
	return v, cb, nil
}

// L2NormValueGrad returns ‖a‖₂ and ∂‖a‖₂/∂Ĉa = Ĉa/‖a‖₂. The gradient is
// undefined at the zero array, for which an error is returned.
func (c *Compressor) L2NormValueGrad(a *CompressedArray) (float64, []float64, error) {
	if err := c.checkOwned(a); err != nil {
		return 0, nil, err
	}
	ca := c.specifiedCoefficients(a)
	norm := 0.0
	for _, v := range ca {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return 0, nil, fmt.Errorf("core: L2 norm gradient undefined at the zero array")
	}
	grad := make([]float64, len(ca))
	for i, v := range ca {
		grad[i] = v / norm
	}
	return norm, grad, nil
}

// SquaredDistanceValueGrad returns ‖a−b‖² and its gradient 2(Ĉa−Ĉb) with
// respect to Ĉa — the loss driving compressed-domain fitting.
func (c *Compressor) SquaredDistanceValueGrad(a, b *CompressedArray) (float64, []float64, error) {
	if err := c.checkPair(a, b); err != nil {
		return 0, nil, err
	}
	ca := c.specifiedCoefficients(a)
	cb := c.specifiedCoefficients(b)
	v := 0.0
	grad := make([]float64, len(ca))
	for i := range ca {
		d := ca[i] - cb[i]
		v += d * d
		grad[i] = 2 * d
	}
	return v, grad, nil
}

// CosineSimilarityValueGrad returns cos(a,b) and its gradient with
// respect to Ĉa: ∂/∂Ĉa [⟨a,b⟩/(‖a‖‖b‖)] = Ĉb/(‖a‖‖b‖) − cos·Ĉa/‖a‖².
func (c *Compressor) CosineSimilarityValueGrad(a, b *CompressedArray) (float64, []float64, error) {
	if err := c.checkPair(a, b); err != nil {
		return 0, nil, err
	}
	ca := c.specifiedCoefficients(a)
	cb := c.specifiedCoefficients(b)
	dot, na2, nb2 := 0.0, 0.0, 0.0
	for i := range ca {
		dot += ca[i] * cb[i]
		na2 += ca[i] * ca[i]
		nb2 += cb[i] * cb[i]
	}
	na, nb := math.Sqrt(na2), math.Sqrt(nb2)
	if na == 0 || nb == 0 {
		return 0, nil, fmt.Errorf("core: cosine similarity gradient undefined at a zero array")
	}
	cos := dot / (na * nb)
	grad := make([]float64, len(ca))
	for i := range ca {
		grad[i] = cb[i]/(na*nb) - cos*ca[i]/na2
	}
	return cos, grad, nil
}

// MeanValueGrad returns Mean(a) and its gradient: only the first
// coefficient of each block contributes, with weight √(∏i)/∏s.
func (c *Compressor) MeanValueGrad(a *CompressedArray) (float64, []float64, error) {
	if err := c.checkOwned(a); err != nil {
		return 0, nil, err
	}
	if c.firstKept() < 0 {
		return 0, nil, errFirstPruned
	}
	m, err := c.Mean(a)
	if err != nil {
		return 0, nil, err
	}
	K := len(c.keep)
	grad := make([]float64, len(a.F))
	w := c.sqrtVol / float64(a.OriginalLen())
	for k := 0; k < a.NumBlocks(); k++ {
		grad[k*K] = w
	}
	return m, grad, nil
}

// VarianceValueGrad returns Variance(a) and its gradient. With
// Var = (Σ Ĉ² − (ΣA)²/n)/n and ΣA = √(∏i)·Σ first coefficients:
// ∂Var/∂Ĉᵢ = 2Ĉᵢ/n − [i is a first coefficient]·2·ΣA·√(∏i)/n².
func (c *Compressor) VarianceValueGrad(a *CompressedArray) (float64, []float64, error) {
	if err := c.checkOwned(a); err != nil {
		return 0, nil, err
	}
	if c.firstKept() < 0 {
		return 0, nil, errFirstPruned
	}
	v, err := c.Variance(a)
	if err != nil {
		return 0, nil, err
	}
	ca := c.specifiedCoefficients(a)
	n := float64(a.OriginalLen())
	sumA := 0.0
	K := len(c.keep)
	for k := 0; k < a.NumBlocks(); k++ {
		sumA += ca[k*K] * c.sqrtVol
	}
	grad := make([]float64, len(ca))
	for i, cv := range ca {
		grad[i] = 2 * cv / n
	}
	for k := 0; k < a.NumBlocks(); k++ {
		grad[k*K] -= 2 * sumA * c.sqrtVol / (n * n)
	}
	return v, grad, nil
}

// FitScale finds the scalar α minimizing ‖α·a − b‖² by gradient descent
// in the compressed domain, demonstrating the optimization-pipeline use
// the paper motivates. Returns α and the final loss. (The closed form is
// ⟨a,b⟩/⟨a,a⟩; the descent must converge to it, which the tests check.)
func (c *Compressor) FitScale(a, b *CompressedArray, steps int, learningRate float64) (alpha, loss float64, err error) {
	if err := c.checkPair(a, b); err != nil {
		return 0, 0, err
	}
	ca := c.specifiedCoefficients(a)
	cb := c.specifiedCoefficients(b)
	aa, ab := 0.0, 0.0
	for i := range ca {
		aa += ca[i] * ca[i]
		ab += ca[i] * cb[i]
	}
	if aa == 0 {
		return 0, 0, fmt.Errorf("core: cannot fit against the zero array")
	}
	alpha = 0
	for s := 0; s < steps; s++ {
		// d/dα ‖αA − B‖² = 2(α⟨A,A⟩ − ⟨A,B⟩).
		g := 2 * (alpha*aa - ab)
		alpha -= learningRate * g
	}
	bb := 0.0
	for i := range cb {
		bb += cb[i] * cb[i]
	}
	// The expansion cancels to ~0 for perfect fits; clamp the float dust.
	loss = math.Max(alpha*alpha*aa-2*alpha*ab+bb, 0)
	return alpha, loss, nil
}
