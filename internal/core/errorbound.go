package core

import (
	"math"

	"repro/internal/tensor"
)

// Stage-wise error analysis (§IV-D), the quantitative form of the paper's
// future-work item "rigorous stage-wise error analysis for PyBlaz similar
// to what has been done for ZFP". All bounds are per compressed array and
// cost O(number of blocks).

// ErrorBounds describes guaranteed reconstruction-error bounds for one
// compressed array, derived from its per-block biggest coefficients.
type ErrorBounds struct {
	// BinningLinfPerCoeff is the largest per-coefficient binning error
	// across blocks: max_k N_k/(2r+1) (§IV-D: half a bin width).
	BinningLinfPerCoeff float64
	// BlockL2 is the largest per-block L2 reconstruction error bound from
	// binning: max_k √(∏i)·N_k/(2r+1). Orthonormality makes the block's
	// spatial L2 error equal the coefficient-space L2 error.
	BlockL2 float64
	// LooseLinf is the §IV-D "rather loose" per-element bound
	// max_k ‖C_k‖∞·∏i, valid even under pruning.
	LooseLinf float64
}

// ErrorBoundsFor computes the §IV-D bounds for a. Pruned coefficients are
// covered only by the loose L∞ bound (the pruning error is the pruned
// coefficients themselves, which the compressed form no longer knows).
func (c *Compressor) ErrorBoundsFor(a *CompressedArray) (ErrorBounds, error) {
	if err := c.checkOwned(a); err != nil {
		return ErrorBounds{}, err
	}
	maxN := 0.0
	for _, n := range a.N {
		if n > maxN || math.IsNaN(n) {
			maxN = n
		}
	}
	vol := float64(tensor.Prod(c.settings.BlockShape))
	bins := 2*c.radius + 1
	return ErrorBounds{
		BinningLinfPerCoeff: maxN / bins,
		BlockL2:             math.Sqrt(vol) * maxN / bins,
		LooseLinf:           maxN * vol,
	}, nil
}

// VerifyReconstruction decompresses a and checks it against the original
// input, returning the measured L∞ and per-block L2 maxima together with
// the guaranteed bounds. Intended for the paper's verification use case
// (§VI): "subtle flaws might look confusingly similar to actual data
// aberrations", so measured-vs-bound is an executable invariant.
func (c *Compressor) VerifyReconstruction(original *tensor.Tensor, a *CompressedArray) (measuredLinf, measuredBlockL2 float64, bounds ErrorBounds, err error) {
	bounds, err = c.ErrorBoundsFor(a)
	if err != nil {
		return 0, 0, bounds, err
	}
	dec, err := c.Decompress(a)
	if err != nil {
		return 0, 0, bounds, err
	}
	measuredLinf = original.MaxAbsDiff(dec)

	ob := tensor.BlockTensor(original, c.settings.BlockShape)
	db := tensor.BlockTensor(dec, c.settings.BlockShape)
	for k := 0; k < ob.NumBlocks(); k++ {
		s := 0.0
		o, d := ob.Block(k), db.Block(k)
		for i := range o {
			diff := o[i] - d[i]
			s += diff * diff
		}
		if l2 := math.Sqrt(s); l2 > measuredBlockL2 {
			measuredBlockL2 = l2
		}
	}
	return measuredLinf, measuredBlockL2, bounds, nil
}

// BlockCovariances returns the block-wise covariance of two compressed
// arrays (§IV-A7: "Block-wise covariance is also available by getting the
// block-wise means of this product"), shaped like the block arrangement.
func (c *Compressor) BlockCovariances(a, b *CompressedArray) (*tensor.Tensor, error) {
	if err := c.checkPair(a, b); err != nil {
		return nil, err
	}
	if c.firstKept() < 0 {
		return nil, errFirstPruned
	}
	K := len(c.keep)
	ca := c.specifiedCoefficients(a)
	cb := c.specifiedCoefficients(b)
	vol := float64(tensor.Prod(c.settings.BlockShape))
	out := tensor.New(a.Blocks...)
	tensor.ParallelFor(a.NumBlocks(), func(start, end int) {
		for k := start; k < end; k++ {
			dot := 0.0
			for i := 0; i < K; i++ {
				dot += ca[k*K+i] * cb[k*K+i]
			}
			meanA := ca[k*K] / c.sqrtVol
			meanB := cb[k*K] / c.sqrtVol
			out.Data()[k] = dot/vol - meanA*meanB
		}
	})
	return out, nil
}

// BlockStdDevs returns the block-wise standard deviation (§IV-A8).
func (c *Compressor) BlockStdDevs(a *CompressedArray) (*tensor.Tensor, error) {
	v, err := c.BlockVariances(a)
	if err != nil {
		return nil, err
	}
	return v.Map(func(x float64) float64 { return math.Sqrt(math.Max(x, 0)) }), nil
}
