package core

import (
	"fmt"

	"repro/internal/tensor"
)

// Partial decompression: because every block is coded independently
// (§III-A(b): blocking "allows subsequent steps ... to be performed on
// each block independently"), a sub-region of the array can be recovered
// by decompressing only the blocks that overlap it. For a region of
// volume v this costs O(v) instead of O(∏s) — the random-access benefit
// block compressors are built for.

// DecompressRegion decompresses the axis-aligned region of a starting at
// offset (inclusive) with the given shape, decompressing only overlapping
// blocks. offset and shape must describe a region inside the original
// array bounds.
func (c *Compressor) DecompressRegion(a *CompressedArray, offset, shape []int) (*tensor.Tensor, error) {
	if err := c.checkOwned(a); err != nil {
		return nil, err
	}
	d := len(a.Shape)
	if len(offset) != d || len(shape) != d {
		return nil, fmt.Errorf("core: region offset %v / shape %v must have %d dims", offset, shape, d)
	}
	for i := 0; i < d; i++ {
		if offset[i] < 0 || shape[i] <= 0 || offset[i]+shape[i] > a.Shape[i] {
			return nil, fmt.Errorf("core: region offset %v shape %v out of bounds %v", offset, shape, a.Shape)
		}
	}
	bs := c.settings.BlockShape

	// Block-index range overlapped by the region in each dimension.
	lo := make([]int, d)
	hi := make([]int, d) // exclusive
	for i := 0; i < d; i++ {
		lo[i] = offset[i] / bs[i]
		hi[i] = (offset[i] + shape[i] + bs[i] - 1) / bs[i]
	}

	out := tensor.New(shape...)
	blockVol := tensor.Prod(bs)
	K := len(c.keep)
	r := c.radius
	ft := c.settings.FloatType

	// Iterate over overlapped blocks; decompress each into a scratch
	// buffer and scatter the in-region cells.
	blockIdx := append([]int(nil), lo...)
	block := make([]float64, blockVol)
	scratch := make([]float64, blockVol)
	inner := make([]int, d)
	src := make([]int, d)
	dst := make([]int, d)
	for {
		// Flat block number in the block-major layout.
		k := 0
		for i := 0; i < d; i++ {
			k = k*a.Blocks[i] + blockIdx[i]
		}
		// Decompress block k (same math as Decompress, one block).
		for i := range block {
			block[i] = 0
		}
		nk := a.N[k]
		fs := a.F[k*K : (k+1)*K]
		for i, pos := range c.keep {
			block[pos] = ft.Round(nk * float64(fs[i]) / r)
		}
		c.tr.InverseBlock(block, bs, scratch)

		// Scatter the cells that fall inside the region.
		for i := range inner {
			inner[i] = 0
		}
		pos := 0
		for {
			in := true
			for i := 0; i < d; i++ {
				src[i] = blockIdx[i]*bs[i] + inner[i]
				dst[i] = src[i] - offset[i]
				if dst[i] < 0 || dst[i] >= shape[i] {
					in = false
					break
				}
			}
			if in {
				out.Data()[out.Offset(dst)] = block[pos]
			}
			pos++
			if !tensor.NextIndex(inner, bs) {
				break
			}
		}

		// Advance blockIdx within [lo, hi).
		adv := d - 1
		for ; adv >= 0; adv-- {
			blockIdx[adv]++
			if blockIdx[adv] < hi[adv] {
				break
			}
			blockIdx[adv] = lo[adv]
		}
		if adv < 0 {
			break
		}
	}
	return out, nil
}

// At decompresses the single element of a at the given multi-index
// (decompressing only its block).
func (c *Compressor) At(a *CompressedArray, idx ...int) (float64, error) {
	shape := make([]int, len(idx))
	for i := range shape {
		shape[i] = 1
	}
	region, err := c.DecompressRegion(a, idx, shape)
	if err != nil {
		return 0, err
	}
	return region.Data()[0], nil
}
