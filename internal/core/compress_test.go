package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/scalar"
	"repro/internal/tensor"
	"repro/internal/transform"
)

// randomTensor fills a tensor with standard normal values.
func randomTensor(seed int64, shape ...int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return t
}

// smoothTensor fills a tensor with a smooth multiscale field, which
// compresses well (small high-frequency coefficients).
func smoothTensor(seed int64, shape ...int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	p1, p2, p3 := rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi
	t := tensor.New(shape...)
	idx := make([]int, len(shape))
	i := 0
	for {
		v := 0.0
		for d, c := range idx {
			x := float64(c) / float64(shape[d])
			v += math.Sin(2*math.Pi*x+p1) + 0.5*math.Cos(4*math.Pi*x+p2) + 0.25*math.Sin(6*math.Pi*x+p3)
		}
		t.Data()[i] = v
		i++
		if !tensor.NextIndex(idx, shape) {
			break
		}
	}
	return t
}

func mustCompressor(t *testing.T, s Settings) *Compressor {
	t.Helper()
	c, err := NewCompressor(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func compress(t *testing.T, c *Compressor, x *tensor.Tensor) *CompressedArray {
	t.Helper()
	a, err := c.Compress(x)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func decompress(t *testing.T, c *Compressor, a *CompressedArray) *tensor.Tensor {
	t.Helper()
	x, err := c.Decompress(a)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestSettingsValidate(t *testing.T) {
	good := DefaultSettings(4, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Settings{
		{BlockShape: []int{3, 4}, FloatType: scalar.Float32, IndexType: scalar.Int16},
		{BlockShape: nil, FloatType: scalar.Float32, IndexType: scalar.Int16},
		{BlockShape: []int{4}, FloatType: scalar.FloatType(9), IndexType: scalar.Int16},
		{BlockShape: []int{4}, FloatType: scalar.Float32, IndexType: scalar.IndexType(9)},
		{BlockShape: []int{4}, FloatType: scalar.Float32, IndexType: scalar.Int16, Transform: transform.Kind(7)},
		{BlockShape: []int{4}, FloatType: scalar.Float32, IndexType: scalar.Int16, Mask: []bool{true}},
		{BlockShape: []int{4}, FloatType: scalar.Float32, IndexType: scalar.Int16, Mask: []bool{false, false, false, false}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad settings %d should fail validation", i)
		}
		if _, err := NewCompressor(s); err == nil {
			t.Errorf("NewCompressor with bad settings %d should fail", i)
		}
	}
}

func TestCompressDecompressShapes(t *testing.T) {
	shapes := [][]int{
		{16, 16}, {17, 9}, {64}, {8, 8, 8}, {5, 12, 7}, {3, 224, 6},
	}
	blocks := [][]int{
		{4, 4}, {4, 4}, {8}, {4, 4, 4}, {4, 4, 4}, {4, 8, 2},
	}
	for i, shape := range shapes {
		c := mustCompressor(t, DefaultSettings(blocks[i]...))
		x := smoothTensor(int64(i), shape...)
		a := compress(t, c, x)
		y := decompress(t, c, a)
		if !y.SameShape(x) {
			t.Errorf("shape %v: decompressed shape %v", shape, y.Shape())
			continue
		}
		// Smooth data with int16 bins must reconstruct closely.
		rng := x.Max() - x.Min()
		if err := x.MaxAbsDiff(y); err > 0.02*rng {
			t.Errorf("shape %v: L∞ error %g too large (range %g)", shape, err, rng)
		}
	}
}

func TestCompressDimsMismatch(t *testing.T) {
	c := mustCompressor(t, DefaultSettings(4, 4))
	if _, err := c.Compress(tensor.New(8)); err == nil {
		t.Error("compressing 1-D tensor with 2-D block shape should fail")
	}
}

func TestDecompressForeignArrayFails(t *testing.T) {
	c1 := mustCompressor(t, DefaultSettings(4, 4))
	s2 := DefaultSettings(4, 4)
	s2.IndexType = scalar.Int8
	c2 := mustCompressor(t, s2)
	a := compress(t, c1, smoothTensor(1, 16, 16))
	if _, err := c2.Decompress(a); err == nil {
		t.Error("decompressing with mismatched settings should fail")
	}
}

func TestBinningErrorBound(t *testing.T) {
	// §IV-D: the maximum coefficient error per block is N_k/(2r+1), and by
	// orthonormality the block L2 error equals the coefficient L2 error:
	// ≤ √(∏i)·N_k/(2r+1). Check the per-block L2 bound.
	s := DefaultSettings(4, 4)
	s.IndexType = scalar.Int8
	s.FloatType = scalar.Float64
	c := mustCompressor(t, s)
	x := randomTensor(2, 16, 16)
	a := compress(t, c, x)
	y := decompress(t, c, a)

	xb := tensor.BlockTensor(x, s.BlockShape)
	yb := tensor.BlockTensor(y, s.BlockShape)
	r := float64(scalar.Int8.Radius())
	for k := 0; k < xb.NumBlocks(); k++ {
		l2 := 0.0
		for i, v := range xb.Block(k) {
			d := v - yb.Block(k)[i]
			l2 += d * d
		}
		l2 = math.Sqrt(l2)
		// Bin width is 2N/(2r+1); max per-coefficient error is half that.
		// (Rounding N to the float type can only change it negligibly at
		// Float64.)
		bound := math.Sqrt(16) * a.N[k] / (2*r + 1)
		if l2 > bound*1.0001 {
			t.Errorf("block %d: L2 error %g exceeds bound %g", k, l2, bound)
		}
	}
}

func TestZeroTensor(t *testing.T) {
	c := mustCompressor(t, DefaultSettings(4, 4))
	x := tensor.New(8, 8)
	a := compress(t, c, x)
	for _, n := range a.N {
		if n != 0 {
			t.Errorf("N of zero tensor = %g", n)
		}
	}
	y := decompress(t, c, a)
	if y.AbsMax() != 0 {
		t.Error("zero tensor should decompress to zeros")
	}
	// Scalar ops on the zero array must not divide by zero.
	if v, err := c.L2Norm(a); err != nil || v != 0 {
		t.Errorf("L2Norm(0) = %g, %v", v, err)
	}
	if v, err := c.Mean(a); err != nil || v != 0 {
		t.Errorf("Mean(0) = %g, %v", v, err)
	}
}

func TestConstantTensor(t *testing.T) {
	// A constant array has all energy in first coefficients; binning is
	// exact for the single non-zero coefficient.
	c := mustCompressor(t, DefaultSettings(4, 4))
	x := tensor.New(16, 16).Fill(3.25) // exactly representable
	a := compress(t, c, x)
	y := decompress(t, c, a)
	if d := x.MaxAbsDiff(y); d > 1e-6 {
		t.Errorf("constant tensor round trip error %g", d)
	}
	if m, _ := c.Mean(a); math.Abs(m-3.25) > 1e-6 {
		t.Errorf("Mean = %g, want 3.25", m)
	}
	if v, _ := c.Variance(a); math.Abs(v) > 1e-6 {
		t.Errorf("Variance = %g, want 0", v)
	}
}

func TestFloat16OverflowProducesNonFinite(t *testing.T) {
	// Coefficients exceeding 65504 overflow float16 → Inf N (the Fig. 5
	// NaN phenomenon). A 4×4 block of 65504s has first coefficient
	// 65504·4 = 262016 > 65504.
	s := DefaultSettings(4, 4)
	s.FloatType = scalar.Float16
	c := mustCompressor(t, s)
	x := tensor.New(4, 4).Fill(60000)
	a := compress(t, c, x)
	if !math.IsInf(a.N[0], 1) {
		t.Fatalf("N = %g, want +Inf from float16 overflow", a.N[0])
	}
	y := decompress(t, c, a)
	hasNonFinite := false
	for _, v := range y.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			hasNonFinite = true
		}
	}
	if !hasNonFinite {
		t.Error("decompressed overflowed array should contain non-finite values")
	}
	// bfloat16 has float32's exponent range: same data stays finite.
	s.FloatType = scalar.BFloat16
	c2 := mustCompressor(t, s)
	a2 := compress(t, c2, x)
	if math.IsInf(a2.N[0], 0) || math.IsNaN(a2.N[0]) {
		t.Error("bfloat16 N should stay finite for 60000-valued data")
	}
}

func TestIndexTypeGranularity(t *testing.T) {
	// int16 must reconstruct random data more accurately than int8
	// (more bins → finer rounding, §III-A(d)).
	x := randomTensor(5, 32, 32)
	var errs [2]float64
	for i, it := range []scalar.IndexType{scalar.Int8, scalar.Int16} {
		s := DefaultSettings(8, 8)
		s.IndexType = it
		s.FloatType = scalar.Float64
		c := mustCompressor(t, s)
		errs[i] = x.MaxAbsDiff(decompress(t, c, compress(t, c, x)))
	}
	if errs[1] >= errs[0] {
		t.Errorf("int16 error %g should be < int8 error %g", errs[1], errs[0])
	}
}

func TestPruningActsAsLowPass(t *testing.T) {
	// Pruning high frequencies of a smooth array loses little; of a noisy
	// array it loses a lot.
	mask, err := KeepLowFrequency([]int{8, 8}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSettings(8, 8)
	s.Mask = mask
	s.FloatType = scalar.Float64
	c := mustCompressor(t, s)

	smooth := smoothTensor(1, 32, 32)
	noisy := randomTensor(1, 32, 32)
	smoothErr := smooth.RMSE(decompress(t, c, compress(t, c, smooth)))
	noisyErr := noisy.RMSE(decompress(t, c, compress(t, c, noisy)))
	if smoothErr >= noisyErr {
		t.Errorf("smooth RMSE %g should be < noisy RMSE %g under low-pass pruning", smoothErr, noisyErr)
	}
}

func TestPrunedCoefficientsAreZeroOnDecompress(t *testing.T) {
	// With only the first coefficient kept, each decompressed block must
	// be constant (equal to its mean).
	mask := make([]bool, 16)
	mask[0] = true
	s := DefaultSettings(4, 4)
	s.Mask = mask
	c := mustCompressor(t, s)
	x := randomTensor(3, 8, 8)
	y := decompress(t, c, compress(t, c, x))
	yb := tensor.BlockTensor(y, []int{4, 4})
	for k := 0; k < yb.NumBlocks(); k++ {
		blk := yb.Block(k)
		for _, v := range blk {
			if math.Abs(v-blk[0]) > 1e-6 {
				t.Fatalf("block %d not constant after keep-first-only pruning", k)
			}
		}
	}
}

func TestHaarTransformRoundTrip(t *testing.T) {
	s := DefaultSettings(8, 8)
	s.Transform = transform.Haar
	s.FloatType = scalar.Float64
	c := mustCompressor(t, s)
	x := smoothTensor(9, 32, 32)
	y := decompress(t, c, compress(t, c, x))
	rng := x.Max() - x.Min()
	if e := x.MaxAbsDiff(y); e > 0.02*rng {
		t.Errorf("Haar round trip error %g", e)
	}
}

func TestCompressorAccessors(t *testing.T) {
	mask, _ := KeepLowFrequency([]int{4, 4}, 0.5)
	s := DefaultSettings(4, 4)
	s.Mask = mask
	c := mustCompressor(t, s)
	if c.KeptCoefficients() != 8 {
		t.Errorf("KeptCoefficients = %d, want 8", c.KeptCoefficients())
	}
	got := c.Settings()
	got.BlockShape[0] = 99
	if c.Settings().BlockShape[0] == 99 {
		t.Error("Settings() must return a defensive copy")
	}
}

func TestCompressedArrayAccessors(t *testing.T) {
	c := mustCompressor(t, DefaultSettings(4, 4))
	a := compress(t, c, smoothTensor(1, 10, 6))
	if !tensor.EqualShape(a.Blocks, []int{3, 2}) {
		t.Errorf("Blocks = %v", a.Blocks)
	}
	if a.NumBlocks() != 6 || a.Kept() != 16 {
		t.Errorf("NumBlocks=%d Kept=%d", a.NumBlocks(), a.Kept())
	}
	if !tensor.EqualShape(a.PaddedShape(), []int{12, 8}) {
		t.Errorf("PaddedShape = %v", a.PaddedShape())
	}
	if a.PaddedLen() != 96 || a.OriginalLen() != 60 {
		t.Errorf("PaddedLen=%d OriginalLen=%d", a.PaddedLen(), a.OriginalLen())
	}
	cl := a.Clone()
	cl.F[0] = 99
	cl.N[0] = 99
	if a.F[0] == 99 || a.N[0] == 99 {
		t.Error("Clone must deep-copy")
	}
}

func TestDecompressionDeterministic(t *testing.T) {
	// Parallel decompression must be deterministic.
	c := mustCompressor(t, DefaultSettings(4, 4))
	x := randomTensor(1, 64, 64)
	a := compress(t, c, x)
	y1 := decompress(t, c, a)
	y2 := decompress(t, c, a)
	if y1.MaxAbsDiff(y2) != 0 {
		t.Error("decompression not deterministic")
	}
	a2 := compress(t, c, x)
	for i := range a.F {
		if a.F[i] != a2.F[i] {
			t.Fatal("compression not deterministic")
		}
	}
}
