package repro

import (
	"fmt"
	"testing"

	"repro/internal/baseline/blaz"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/scalar"
	"repro/internal/series"
	"repro/internal/tensor"
	"repro/internal/transform"
)

// Supplementary benchmark families: serialization, the compressed
// time-series pipeline, reduced-precision conversion, and the derived
// distance metrics.

func BenchmarkSerializeEncode(b *testing.B) {
	c := mustC(b, core.DefaultSettings(4, 4))
	a := mustA(b, c, data.Gradient(256, 256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Encode(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeDecode(b *testing.B) {
	c := mustC(b, core.DefaultSettings(4, 4))
	a := mustA(b, c, data.Gradient(256, 256))
	blob, err := core.Encode(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlazSerialize(b *testing.B) {
	x := data.Gradient(256, 256)
	a, err := blaz.Compress(x.Data(), 256, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := blaz.Encode(a)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := blaz.Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarRounding(b *testing.B) {
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = float64(i)*0.37 - 700
	}
	for _, ft := range []scalar.FloatType{scalar.BFloat16, scalar.Float16, scalar.Float32} {
		b.Run(ft.String(), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, x := range xs {
					_ = ft.Round(x)
				}
			}
		})
	}
}

func BenchmarkSeriesPipeline(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := mustC(b, core.DefaultSettings(8, 8))
			frames := make([]*tensor.Tensor, 8)
			for i := range frames {
				frames[i] = data.Gradient(128, 128)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := series.New(c)
				p := series.NewPipeline(s, workers)
				for j, f := range frames {
					p.Submit(j, f)
				}
				if err := p.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDerivedDistances(b *testing.B) {
	c := mustC(b, core.DefaultSettings(4, 4))
	a1 := mustA(b, c, data.Gradient(128, 128))
	a2 := mustA(b, c, data.Gradient(128, 128))
	b.Run("l2distance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.L2Distance(a1, a2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.MSE(a1, a2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGradients(b *testing.B) {
	c := mustC(b, core.DefaultSettings(4, 4))
	a1 := mustA(b, c, data.Gradient(128, 128))
	a2 := mustA(b, c, data.Gradient(128, 128))
	b.Run("dot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := c.DotValueGrad(a1, a2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cosine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := c.CosineSimilarityValueGrad(a1, a2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Haar-vs-DCT reconstruction quality ablation reported as a custom metric
// (lower is better), complementing the timing ablation in bench_test.go.
func BenchmarkAblationTransformQuality(b *testing.B) {
	for _, tr := range []transform.Kind{transform.DCT, transform.Haar} {
		b.Run("transform="+tr.String(), func(b *testing.B) {
			s := core.DefaultSettings(8, 8)
			s.Transform = tr
			s.IndexType = scalar.Int8
			c := mustC(b, s)
			x := data.Gradient(128, 128)
			var rmse float64
			for i := 0; i < b.N; i++ {
				a := mustA(b, c, x)
				y, err := c.Decompress(a)
				if err != nil {
					b.Fatal(err)
				}
				rmse = x.RMSE(y)
			}
			b.ReportMetric(rmse, "rmse")
		})
	}
}

// Region decompression cost scales with the region, not the array.
func BenchmarkRegionDecompress(b *testing.B) {
	c := mustC(b, core.DefaultSettings(4, 4))
	a := mustA(b, c, data.Gradient(512, 512))
	b.Run("region=32x32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.DecompressRegion(a, []int{100, 100}, []int{32, 32}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full=512x512", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Decompress(a); err != nil {
				b.Fatal(err)
			}
		}
	})
}
