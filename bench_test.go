// Package repro benchmarks: one benchmark family per table and figure of
// the paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Families:
//
//	BenchmarkFig2*  — PyBlaz-vs-Blaz operation time (Fig. 2), via the codec registry
//	BenchmarkFig3*  — compression/decompression vs the ZFP-like baseline (Fig. 3), via the registry
//	BenchmarkCodecMatrix — compress/decompress for every registered codec on the Fig. 2 dataset
//	BenchmarkFig5*  — compressed-space scalar functions on MRI-like data (Fig. 5)
//	BenchmarkFig6*  — fission L2 + Wasserstein pipeline (Fig. 6)
//	BenchmarkFig7*  — per-operation times, 3-D arrays, block 4 (Fig. 7)
//	BenchmarkTableI* — every Table I operation at a fixed size
//	BenchmarkAblation* — DCT vs Haar, pruning fraction, parallel vs serial
//	BenchmarkStore* — durable multi-frame store I/O (bench_store_test.go)
package repro

import (
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/tensor"
	"repro/internal/transform"
)

func mustC(b *testing.B, s core.Settings) *core.Compressor {
	b.Helper()
	c, err := core.NewCompressor(s)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func mustA(b *testing.B, c *core.Compressor, t *tensor.Tensor) *core.CompressedArray {
	b.Helper()
	a, err := c.Compress(t)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// mustCodec constructs a backend from its registry spec.
func mustCodec(b *testing.B, spec string) codec.Codec {
	b.Helper()
	cd, err := codec.Lookup(spec)
	if err != nil {
		b.Fatal(err)
	}
	return cd
}

// mustOps additionally requires compressed-space arithmetic.
func mustOps(b *testing.B, spec string) codec.Ops {
	b.Helper()
	ops, ok := mustCodec(b, spec).(codec.Ops)
	if !ok {
		b.Fatalf("codec %q does not support compressed-space ops", spec)
	}
	return ops
}

func mustCompress(b *testing.B, cd codec.Codec, t *tensor.Tensor) codec.Compressed {
	b.Helper()
	c, err := cd.Compress(t)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// --- Fig. 2: goblaz vs blaz, 2-D, 8×8 blocks, float64/int8 ---
//
// Both contenders come from the codec registry and run through the same
// codec-generic loops, so the per-backend hand-wiring of the seed is gone:
// adding a backend to fig2Specs is all it takes to extend the comparison.

var fig2Specs = []string{
	"goblaz:block=8x8,float=float64,index=int8",
	"blaz",
}

var fig2Sizes = []int{64, 256, 1024}

// benchFig2 runs one Fig. 2 operation family for every codec and size.
func benchFig2(b *testing.B, fn func(b *testing.B, cd codec.Ops, x, y *tensor.Tensor)) {
	for _, spec := range fig2Specs {
		for _, n := range fig2Sizes {
			cd := mustOps(b, spec)
			b.Run(fmt.Sprintf("codec=%s/size=%d", cd.Name(), n), func(b *testing.B) {
				fn(b, cd, data.Gradient(n, n), data.Gradient(n, n))
			})
		}
	}
}

func BenchmarkFig2Compress(b *testing.B) {
	benchFig2(b, func(b *testing.B, cd codec.Ops, x, _ *tensor.Tensor) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustCompress(b, cd, x)
		}
	})
}

func BenchmarkFig2Decompress(b *testing.B) {
	benchFig2(b, func(b *testing.B, cd codec.Ops, x, _ *tensor.Tensor) {
		a := mustCompress(b, cd, x)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cd.Decompress(a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig2Add(b *testing.B) {
	benchFig2(b, func(b *testing.B, cd codec.Ops, x, y *tensor.Tensor) {
		a1 := mustCompress(b, cd, x)
		a2 := mustCompress(b, cd, y)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cd.Add(a1, a2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig2Multiply(b *testing.B) {
	benchFig2(b, func(b *testing.B, cd codec.Ops, x, _ *tensor.Tensor) {
		a := mustCompress(b, cd, x)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cd.MulScalar(a, 1.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Fig. 3: zfpsim fixed-rate vs goblaz, 2-D and 3-D ---

func BenchmarkFig3ZfpCompress2D(b *testing.B) {
	for _, rate := range []int{8, 16, 32} {
		cd := mustCodec(b, fmt.Sprintf("zfp:rate=%d", rate))
		b.Run(fmt.Sprintf("rate=%d/size=256", rate), func(b *testing.B) {
			x := data.Gradient(256, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCompress(b, cd, x)
			}
		})
	}
}

func BenchmarkFig3ZfpDecompress2D(b *testing.B) {
	for _, rate := range []int{8, 16, 32} {
		cd := mustCodec(b, fmt.Sprintf("zfp:rate=%d", rate))
		b.Run(fmt.Sprintf("rate=%d/size=256", rate), func(b *testing.B) {
			a := mustCompress(b, cd, data.Gradient(256, 256))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cd.Decompress(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig3ZfpCompress3D(b *testing.B) {
	cd := mustCodec(b, "zfp:rate=16")
	x := data.Gradient(64, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCompress(b, cd, x)
	}
}

func BenchmarkFig3GoblazCompress2D(b *testing.B) {
	for _, index := range []string{"int8", "int16"} {
		cd := mustCodec(b, "goblaz:block=4x4,index="+index)
		b.Run(fmt.Sprintf("index=%s/size=256", index), func(b *testing.B) {
			x := data.Gradient(256, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCompress(b, cd, x)
			}
		})
	}
}

func BenchmarkFig3GoblazDecompress2D(b *testing.B) {
	cd := mustCodec(b, "goblaz:block=4x4")
	a := mustCompress(b, cd, data.Gradient(256, 256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cd.Decompress(a); err != nil {
			b.Fatal(err)
		}
	}
}

// SZ is a background comparator (§II): include its round trip for context.
func BenchmarkSZCompress2D(b *testing.B) {
	cd := mustCodec(b, "sz:tol=1e-4")
	x := data.Gradient(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCompress(b, cd, x)
	}
}

// --- Codec matrix: every registered backend on the same dataset ---

// BenchmarkCodecMatrix runs compress and decompress for every codec in
// the registry (at its default spec) on the Fig. 2 dataset, and reports
// the measured compression ratio as a custom metric. A backend added via
// codec.Register is benchmarked here with no further wiring.
func BenchmarkCodecMatrix(b *testing.B) {
	x := data.Gradient(256, 256)
	raw := float64(x.Len() * 8)
	for _, name := range codec.List() {
		cd := mustCodec(b, name)
		b.Run("codec="+name+"/op=compress", func(b *testing.B) {
			b.ResetTimer()
			var c codec.Compressed
			for i := 0; i < b.N; i++ {
				c = mustCompress(b, cd, x)
			}
			b.ReportMetric(raw/float64(cd.EncodedSize(c)), "ratio")
		})
		b.Run("codec="+name+"/op=decompress", func(b *testing.B) {
			a := mustCompress(b, cd, x)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cd.Decompress(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 5: compressed-space scalar functions on an MRI-like volume ---

func fig5Volume(b *testing.B) (*core.Compressor, *core.CompressedArray, *core.CompressedArray) {
	b.Helper()
	s := core.DefaultSettings(4, 16, 16)
	c := mustC(b, s)
	v1 := data.MRIVolume(1, 32, 128, 128)
	v2 := data.MRIVolume(2, 32, 128, 128)
	return c, mustA(b, c, v1), mustA(b, c, v2)
}

func BenchmarkFig5Mean(b *testing.B) {
	c, a, _ := fig5Volume(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Mean(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Variance(b *testing.B) {
	c, a, _ := fig5Volume(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Variance(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5L2Norm(b *testing.B) {
	c, a, _ := fig5Volume(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.L2Norm(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5SSIM(b *testing.B) {
	c, a, a2 := fig5Volume(b)
	opts := core.DefaultSSIMOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.StructuralSimilarity(a, a2, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 6: fission pipeline ---

func BenchmarkFig6L2Difference(b *testing.B) {
	s := core.DefaultSettings(16, 16, 16)
	c := mustC(b, s)
	series := data.FissionSeries(1, 40, 40, 66)
	a1 := mustA(b, c, series[9])  // step 690
	a2 := mustA(b, c, series[10]) // step 692
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diff, err := c.Subtract(a2, a1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.L2Norm(diff); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Wasserstein(b *testing.B) {
	for _, p := range []float64{1, 8, 68} {
		b.Run(fmt.Sprintf("p=%g", p), func(b *testing.B) {
			s := core.DefaultSettings(16, 16, 16)
			c := mustC(b, s)
			series := data.FissionSeries(1, 40, 40, 66)
			a1 := mustA(b, c, series[9])
			a2 := mustA(b, c, series[10])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.WassersteinDistance(a1, a2, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 7: per-operation times, 3-D arrays, block 4 ---

func fig7Setup(b *testing.B, n int) (*core.Compressor, *core.CompressedArray, *core.CompressedArray) {
	b.Helper()
	s := core.DefaultSettings(4, 4, 4)
	c := mustC(b, s)
	x := data.Gradient(n, n, n)
	y := data.Gradient(n, n, n)
	return c, mustA(b, c, x), mustA(b, c, y)
}

func BenchmarkFig7(b *testing.B) {
	const n = 64
	type op struct {
		name string
		fn   func(c *core.Compressor, a1, a2 *core.CompressedArray) error
	}
	ops := []op{
		{"negate", func(c *core.Compressor, a1, _ *core.CompressedArray) error {
			_, err := c.Negate(a1)
			return err
		}},
		{"add", func(c *core.Compressor, a1, a2 *core.CompressedArray) error {
			_, err := c.Add(a1, a2)
			return err
		}},
		{"multiply", func(c *core.Compressor, a1, _ *core.CompressedArray) error {
			_, err := c.MulScalar(a1, 2)
			return err
		}},
		{"dot", func(c *core.Compressor, a1, a2 *core.CompressedArray) error {
			_, err := c.Dot(a1, a2)
			return err
		}},
		{"norm2", func(c *core.Compressor, a1, _ *core.CompressedArray) error {
			_, err := c.L2Norm(a1)
			return err
		}},
		{"cosine", func(c *core.Compressor, a1, a2 *core.CompressedArray) error {
			_, err := c.CosineSimilarity(a1, a2)
			return err
		}},
		{"mean", func(c *core.Compressor, a1, _ *core.CompressedArray) error {
			_, err := c.Mean(a1)
			return err
		}},
		{"variance", func(c *core.Compressor, a1, _ *core.CompressedArray) error {
			_, err := c.Variance(a1)
			return err
		}},
		{"ssim", func(c *core.Compressor, a1, a2 *core.CompressedArray) error {
			_, err := c.StructuralSimilarity(a1, a2, core.DefaultSSIMOptions())
			return err
		}},
		{"wasserstein", func(c *core.Compressor, a1, a2 *core.CompressedArray) error {
			_, err := c.WassersteinDistance(a1, a2, 2)
			return err
		}},
	}
	for _, o := range ops {
		b.Run(fmt.Sprintf("op=%s/size=%d", o.name, n), func(b *testing.B) {
			c, a1, a2 := fig7Setup(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := o.fn(c, a1, a2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run(fmt.Sprintf("op=compress/size=%d", n), func(b *testing.B) {
		s := core.DefaultSettings(4, 4, 4)
		c := mustC(b, s)
		x := data.Gradient(n, n, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustA(b, c, x)
		}
	})
	b.Run(fmt.Sprintf("op=decompress/size=%d", n), func(b *testing.B) {
		c, a1, _ := fig7Setup(b, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Decompress(a1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Table I: AddScalar is the remaining untimed op ---

func BenchmarkTableIAddScalar(b *testing.B) {
	c, a1, _ := fig7Setup(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AddScalar(a1, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// DCT vs Haar vs identity transform cost.
func BenchmarkAblationTransform(b *testing.B) {
	for _, tr := range []transform.Kind{transform.DCT, transform.Haar, transform.Identity} {
		b.Run("transform="+tr.String(), func(b *testing.B) {
			s := core.DefaultSettings(8, 8)
			s.Transform = tr
			c := mustC(b, s)
			x := data.Gradient(256, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustA(b, c, x)
			}
		})
	}
}

// Pruning fraction: compression cost vs kept coefficients.
func BenchmarkAblationPruning(b *testing.B) {
	for _, frac := range []float64{1.0, 0.5, 0.25} {
		b.Run(fmt.Sprintf("keep=%.2f", frac), func(b *testing.B) {
			s := core.DefaultSettings(8, 8)
			if frac < 1 {
				mask, err := core.KeepLowFrequency([]int{8, 8}, frac)
				if err != nil {
					b.Fatal(err)
				}
				s.Mask = mask
			}
			c := mustC(b, s)
			x := data.Gradient(256, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustA(b, c, x)
			}
		})
	}
}

// Parallel vs forced-serial block loops (the "GPU" ablation).
func BenchmarkAblationParallelism(b *testing.B) {
	x := data.Gradient(512, 512)
	s := core.DefaultSettings(8, 8)
	for _, mode := range []string{"parallel", "serial"} {
		b.Run(mode, func(b *testing.B) {
			old := tensor.ParallelThreshold()
			if mode == "serial" {
				tensor.SetParallelThreshold(1 << 30)
			}
			defer tensor.SetParallelThreshold(old)
			c := mustC(b, s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustA(b, c, x)
			}
		})
	}
}
