// Command axioms runs the executable equational-axiom suite (§VI of the
// paper: verification of compressed-space operations) against a chosen
// compressor configuration and randomized inputs, printing one line per
// axiom. Exit status is non-zero if any axiom is violated.
//
//	axioms -block 8,8 -float float32 -index int16 -trials 20
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/scalar"
	"repro/internal/transform"
)

func main() {
	blockStr := flag.String("block", "8,8", "block shape")
	floatStr := flag.String("float", "float32", "float type")
	indexStr := flag.String("index", "int16", "index type")
	trStr := flag.String("transform", "dct", "transform")
	shapeStr := flag.String("shape", "", "test array shape (default 4× the block shape)")
	trials := flag.Int("trials", 10, "randomized trials per axiom")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	block, err := parseInts(*blockStr)
	check(err)
	ft, err := scalar.ParseFloatType(*floatStr)
	check(err)
	it, err := scalar.ParseIndexType(*indexStr)
	check(err)
	tk, err := transform.ParseKind(*trStr)
	check(err)

	shape := make([]int, len(block))
	for i := range shape {
		shape[i] = block[i] * 4
	}
	if *shapeStr != "" {
		shape, err = parseInts(*shapeStr)
		check(err)
	}

	s := core.Settings{BlockShape: block, FloatType: ft, IndexType: it, Transform: tk}
	c, err := core.NewCompressor(s)
	check(err)

	fmt.Printf("checking %d axioms × %d trials on shape %v (%v/%v/%v/%v)\n\n",
		12, *trials, shape, block, ft, it, tk)
	results, err := c.CheckAxioms(rand.New(rand.NewSource(*seed)), shape, *trials)
	check(err)

	failed := 0
	for _, r := range results {
		fmt.Println(" ", r)
		if !r.Ok() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "\n%d axiom(s) violated\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nall axioms hold.")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "axioms:", err)
		os.Exit(2)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out[i] = v
	}
	return out, nil
}
