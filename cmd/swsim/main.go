// Command swsim runs the shallow-water precision experiment of §V-A end
// to end: two simulations at different emulated working precisions, their
// surface-height difference computed both on raw data and entirely in
// compressed space, and a textual rendering of where the perturbation
// lives.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	ny := flag.Int("ny", 200, "grid rows")
	nx := flag.Int("nx", 400, "grid columns")
	steps := flag.Int("steps", 5000, "time steps")
	flag.Parse()

	res, err := figures.Fig4(*ny, *nx, *steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swsim:", err)
		os.Exit(1)
	}
	fmt.Printf("shallow-water %dx%d, %d steps\n", *ny, *nx, *steps)
	fmt.Printf("FP32 surface amplitude:        %.6g\n", res.HeightF32.AbsMax())
	fmt.Printf("FP16-FP32 perturbation (L∞):   %.6g\n", res.PerturbationLinf)
	fmt.Printf("compressed-diff agreement:     %.6g\n", res.AgreementLinf)
	fmt.Println()
	fmt.Println("perturbation map (uncompressed | compressed space):")
	renderSideBySide(res)
}

// renderSideBySide draws coarse ASCII heat maps of |difference| for the
// uncompressed and compressed-space difference fields.
func renderSideBySide(res *figures.Fig4Result) {
	const rows, cols = 20, 40
	left := downsample(res.DiffUncompressed.Data(), res.DiffUncompressed.Shape(), rows, cols)
	right := downsample(res.DiffCompressed.Data(), res.DiffCompressed.Shape(), rows, cols)
	max := 0.0
	for i := range left {
		if left[i] > max {
			max = left[i]
		}
		if right[i] > max {
			max = right[i]
		}
	}
	if max == 0 {
		max = 1
	}
	ramp := []byte(" .:-=+*#%@")
	for r := 0; r < rows; r++ {
		line := make([]byte, 0, 2*cols+3)
		for c := 0; c < cols; c++ {
			line = append(line, shade(left[r*cols+c]/max, ramp))
		}
		line = append(line, ' ', '|', ' ')
		for c := 0; c < cols; c++ {
			line = append(line, shade(right[r*cols+c]/max, ramp))
		}
		fmt.Println(string(line))
	}
}

func shade(v float64, ramp []byte) byte {
	i := int(v * float64(len(ramp)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(ramp) {
		i = len(ramp) - 1
	}
	return ramp[i]
}

// downsample reduces a 2-D field to rows×cols of mean |value| per cell.
func downsample(data []float64, shape []int, rows, cols int) []float64 {
	ny, nx := shape[0], shape[1]
	out := make([]float64, rows*cols)
	counts := make([]int, rows*cols)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			r := y * rows / ny
			c := x * cols / nx
			v := data[y*nx+x]
			if v < 0 {
				v = -v
			}
			out[r*cols+c] += v
			counts[r*cols+c]++
		}
	}
	for i := range out {
		if counts[i] > 0 {
			out[i] /= float64(counts[i])
		}
	}
	return out
}
