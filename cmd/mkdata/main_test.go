package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

func TestGenerateKinds(t *testing.T) {
	cases := []struct {
		kind  string
		shape []int
	}{
		{"gradient", []int{8, 8}},
		{"mri", []int{8, 16, 16}},
		{"fission", []int{8, 8, 12}},
		{"shallowwater", []int{16, 24}},
	}
	for _, c := range cases {
		got, err := generate(c.kind, c.shape, 1, 690, 10, "float32")
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if !tensor.EqualShape(got.Shape(), c.shape) {
			t.Errorf("%s: shape %v, want %v", c.kind, got.Shape(), c.shape)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("nope", []int{4}, 1, 0, 0, ""); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := generate("mri", []int{4, 4}, 1, 0, 0, ""); err == nil {
		t.Error("2-D mri should fail")
	}
	if _, err := generate("fission", []int{4, 4, 4}, 1, 123, 0, ""); err == nil {
		t.Error("unknown fission step should fail")
	}
	if _, err := generate("shallowwater", []int{4, 4, 4}, 1, 0, 10, "float32"); err == nil {
		t.Error("3-D shallowwater should fail")
	}
	if _, err := generate("shallowwater", []int{16, 16}, 1, 0, 10, "float128"); err == nil {
		t.Error("bad precision should fail")
	}
}

func TestParseShape(t *testing.T) {
	got, err := parseShape("40, 40, 66")
	if err != nil || len(got) != 3 || got[2] != 66 {
		t.Fatalf("parseShape: %v, %v", got, err)
	}
	if _, err := parseShape("0,4"); err == nil {
		t.Error("zero extent should fail")
	}
	if _, err := parseShape("a"); err == nil {
		t.Error("non-numeric should fail")
	}
}

func TestWriteRaw(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.f64")
	x := tensor.New(4, 4).Fill(1.5)
	if err := writeRaw(path, x); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() != 16*8 {
		t.Fatalf("wrote %d bytes, %v", fi.Size(), err)
	}
}
