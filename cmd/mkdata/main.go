// Command mkdata writes the repository's synthetic datasets to raw
// little-endian float64 files so that cmd/goblaz (and external tools) can
// consume them:
//
//	mkdata -kind gradient -shape 256,256 out.f64
//	mkdata -kind mri -shape 32,256,256 -seed 7 out.f64
//	mkdata -kind fission -shape 40,40,66 -step 690 out.f64
//	mkdata -kind shallowwater -shape 200,400 -steps 5000 -precision float32 out.f64
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/scalar"
	"repro/internal/sim/shallowwater"
	"repro/internal/tensor"
)

func main() {
	kind := flag.String("kind", "gradient", "dataset: gradient|mri|fission|shallowwater")
	shapeStr := flag.String("shape", "", "comma-separated shape (required)")
	seed := flag.Int64("seed", 1, "random seed (mri, fission)")
	step := flag.Int("step", 690, "fission time step (one of the paper's 15)")
	steps := flag.Int("steps", 2000, "shallow-water simulation steps")
	precision := flag.String("precision", "float32", "shallow-water working precision")
	flag.Parse()

	if *shapeStr == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mkdata -kind K -shape N,M[,P] [flags] OUT")
		os.Exit(2)
	}
	shape, err := parseShape(*shapeStr)
	if err != nil {
		fail(err)
	}
	t, err := generate(*kind, shape, *seed, *step, *steps, *precision)
	if err != nil {
		fail(err)
	}
	if err := writeRaw(flag.Arg(0), t); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: %s %v (%d bytes)\n", flag.Arg(0), *kind, t.Shape(), t.Len()*8)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mkdata:", err)
	os.Exit(1)
}

func generate(kind string, shape []int, seed int64, step, steps int, precision string) (*tensor.Tensor, error) {
	switch kind {
	case "gradient":
		return data.Gradient(shape...), nil
	case "mri":
		if len(shape) != 3 {
			return nil, fmt.Errorf("mri needs a 3-D shape, got %v", shape)
		}
		return data.MRIVolume(seed, shape[0], shape[1], shape[2]), nil
	case "fission":
		if len(shape) != 3 {
			return nil, fmt.Errorf("fission needs a 3-D shape, got %v", shape)
		}
		series := data.FissionSeries(seed, shape[0], shape[1], shape[2])
		for i, s := range data.FissionTimeSteps {
			if s == step {
				return series[i], nil
			}
		}
		return nil, fmt.Errorf("step %d not in %v", step, data.FissionTimeSteps)
	case "shallowwater":
		if len(shape) != 2 {
			return nil, fmt.Errorf("shallowwater needs a 2-D shape, got %v", shape)
		}
		p, err := scalar.ParseFloatType(precision)
		if err != nil {
			return nil, err
		}
		cfg := shallowwater.DefaultConfig(p)
		cfg.Ny, cfg.Nx = shape[0], shape[1]
		sim, err := shallowwater.New(cfg)
		if err != nil {
			return nil, err
		}
		sim.Run(steps)
		return sim.Height(), nil
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}

func parseShape(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad extent %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func writeRaw(path string, t *tensor.Tensor) error {
	raw := make([]byte, t.Len()*8)
	for i, v := range t.Data() {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	return os.WriteFile(path, raw, 0o644)
}
