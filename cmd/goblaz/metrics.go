package main

// The metrics subcommand: a one-shot scrape of a running goblaz server.
// By default it fetches the Prometheus text exposition from /metrics
// (works against both the main listener with -metrics and the
// -debug-addr port); -json fetches the /v1/debug/metrics snapshot
// instead and pretty-prints it. A URL that already names a path is
// used verbatim, so any compatible endpoint can be dumped.
//
//	goblaz metrics http://localhost:6060
//	goblaz metrics -json http://localhost:8080

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

func runMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "fetch the JSON snapshot (/v1/debug/metrics) instead of the Prometheus text exposition")
	timeout := fs.Duration("timeout", 10*time.Second, "scrape deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("metrics needs one server URL")
	}
	target, err := metricsURL(fs.Arg(0), *asJSON)
	if err != nil {
		return err
	}
	body, err := scrape(target, *timeout)
	if err != nil {
		return err
	}
	if *asJSON {
		// Round-trip through the snapshot type: validates the document and
		// re-indents it for reading.
		var snap obs.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			return fmt.Errorf("%s: %w", target, err)
		}
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		body = append(out, '\n')
	}
	_, err = os.Stdout.Write(body)
	return err
}

// metricsURL resolves a server base URL to the scrape endpoint. A URL
// that already carries a path is trusted as-is.
func metricsURL(raw string, asJSON bool) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", err
	}
	if u.Scheme == "" {
		return "", fmt.Errorf("%q is not a server URL (want http[s]://host:port)", raw)
	}
	if p := strings.Trim(u.Path, "/"); p != "" {
		return raw, nil
	}
	base := strings.TrimRight(raw, "/")
	if asJSON {
		return base + "/v1/debug/metrics", nil
	}
	return base + "/metrics", nil
}

// scrape fetches one document with a deadline and a bounded body.
func scrape(target string, timeout time.Duration) ([]byte, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(target)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", target, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// scrapeSnapshot fetches and decodes a /v1/debug/metrics document;
// loadtest diffs two of these to report the server-side view of a run.
func scrapeSnapshot(base string, timeout time.Duration) (obs.Snapshot, error) {
	target, err := metricsURL(base, true)
	if err != nil {
		return obs.Snapshot{}, err
	}
	body, err := scrape(target, timeout)
	if err != nil {
		return obs.Snapshot{}, err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return obs.Snapshot{}, fmt.Errorf("%s: %w", target, err)
	}
	return snap, nil
}
