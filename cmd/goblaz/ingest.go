package main

// goblaz ingest streams raw frame files into an appendable store —
// either a local one (opened or created in place) or a remote serving
// instance's ingest route (TARGET is a URL). Frames are labeled
// sequentially; -label-start -1 (the default) continues after the
// store's current maximum label, so repeated invocations append.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/api"
	"repro/internal/ingest"
)

func runIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	shapeStr := fs.String("shape", "", "comma-separated frame shape (required)")
	spec := fs.String("spec", "", "codec spec; required to create a new local store, optional otherwise (overrides per-frame assignment)")
	labelStart := fs.Int("label-start", -1, "label of the first frame (-1: continue after the store's max label)")
	batch := fs.Int("batch", 16, "frames per ingest batch (one durability fsync each)")
	commitEvery := fs.Int("commit-every", 64, "local stores: commit after this many pending frames (0 disables)")
	commitBytes := fs.Int64("commit-bytes", 0, "local stores: commit after this many pending payload bytes (0 disables)")
	timeout := fs.Duration("timeout", 0, "overall deadline (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shapeStr == "" || fs.NArg() < 2 {
		return fmt.Errorf("ingest needs -shape, a TARGET (store path or URL), and at least one frame file")
	}
	shape, err := parseInts(*shapeStr)
	if err != nil {
		return err
	}
	if *batch < 1 {
		*batch = 1
	}
	target, frames := fs.Arg(0), fs.Args()[1:]

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Resolve the sink: a URL ingests through the SDK, a path through
	// the appendable store directly (created on first use when -spec
	// names the codec).
	var sink api.Ingestor
	if isServiceURL(target) {
		c, err := api.NewClient(target, api.ClientOptions{})
		if err != nil {
			return err
		}
		sink = c
	} else {
		opts := ingest.Options{Spec: *spec, CommitFrames: *commitEvery, CommitBytes: *commitBytes}
		var s *ingest.Store
		if _, serr := os.Stat(target); errors.Is(serr, os.ErrNotExist) {
			if *spec == "" {
				return fmt.Errorf("creating %s needs -spec", target)
			}
			s, err = ingest.Create(target, opts)
		} else {
			s, err = ingest.Open(target, opts)
		}
		if err != nil {
			return err
		}
		defer s.Close()
		sink = s
	}

	next := *labelStart
	if next < 0 {
		next, err = nextLabel(ctx, sink)
		if err != nil {
			return err
		}
	}

	start := time.Now()
	sent := 0
	pending := make([]api.IngestFrame, 0, *batch)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		res, err := sink.Ingest(ctx, pending)
		if err != nil {
			return err
		}
		sent += res.Accepted
		pending = pending[:0]
		return nil
	}
	for _, path := range frames {
		t, err := readTensor(path, shape)
		if err != nil {
			return err
		}
		f := api.IngestFrame{Label: next, Shape: shape, Data: t.Data()}
		if *spec != "" {
			f.Spec = *spec
		}
		pending = append(pending, f)
		next++
		if len(pending) >= *batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("ingested %d frame(s) in %s (%.1f frames/s), labels %d..%d\n",
		sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds(), next-sent, next-1)
	return nil
}

// nextLabel picks the label after the target's current maximum, so
// successive producer runs append instead of colliding. Works through
// any ingest sink that is also a Backend (both the SDK client and the
// local store are).
func nextLabel(ctx context.Context, sink api.Ingestor) (int, error) {
	b, ok := sink.(api.Backend)
	if !ok {
		return 0, nil
	}
	infos, err := b.Frames(ctx)
	if err != nil {
		return 0, err
	}
	next := 0
	for _, e := range infos {
		if e.Label >= next {
			next = e.Label + 1
		}
	}
	return next, nil
}
