package main

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/store"
	"repro/internal/tensor"
)

// packInputs writes n raw frame files and returns their paths plus the
// frame tensors.
func packInputs(t *testing.T, dir string, n, rows, cols int) ([]string, []*tensor.Tensor) {
	t.Helper()
	paths := make([]string, n)
	frames := make([]*tensor.Tensor, n)
	for k := 0; k < n; k++ {
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = math.Sin(float64(i)/5) + float64(k)*0.5
		}
		paths[k] = filepath.Join(dir, "frame"+string(rune('a'+k))+".f64")
		writeRaw(t, paths[k], data)
		frames[k] = tensor.FromSlice(data, rows, cols)
	}
	return paths, frames
}

func TestPackUnpackRoundTripEveryCodec(t *testing.T) {
	const rows, cols, n = 24, 16, 3
	for _, name := range codec.List() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			inputs, frames := packInputs(t, dir, n, rows, cols)
			out := filepath.Join(dir, "series.gbz")

			args := []string{"-shape", "24,16", "-codec", name, "-workers", "2", out}
			if err := runPack(append(args, inputs...)); err != nil {
				t.Fatalf("pack: %v", err)
			}
			if err := runInspect([]string{out}); err != nil {
				t.Fatalf("inspect: %v", err)
			}
			prefix := filepath.Join(dir, "back")
			if err := runUnpack([]string{out, prefix}); err != nil {
				t.Fatalf("unpack: %v", err)
			}

			cd, err := codec.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < n; k++ {
				got, err := readTensor(prefix+string(rune('0'+k))+".f64", []int{rows, cols})
				if err != nil {
					t.Fatal(err)
				}
				// Bit-exact against the direct compress→decompress path:
				// the store must add no loss beyond the codec's own.
				c, err := cd.Compress(frames[k])
				if err != nil {
					t.Fatal(err)
				}
				want, err := cd.Decompress(c)
				if err != nil {
					t.Fatal(err)
				}
				if got.MaxAbsDiff(want) != 0 {
					t.Errorf("frame %d: unpack differs from direct codec round trip", k)
				}
			}
		})
	}
}

func TestUnpackSingleFrame(t *testing.T) {
	dir := t.TempDir()
	inputs, _ := packInputs(t, dir, 3, 8, 8)
	out := filepath.Join(dir, "s.gbz")
	if err := runPack(append([]string{"-shape", "8,8", out}, inputs...)); err != nil {
		t.Fatal(err)
	}
	prefix := filepath.Join(dir, "one")
	if err := runUnpack([]string{"-frame", "1", out, prefix}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(prefix + "1.f64"); err != nil {
		t.Errorf("frame 1 not unpacked: %v", err)
	}
	if _, err := os.Stat(prefix + "0.f64"); err == nil {
		t.Error("-frame 1 should not unpack frame 0")
	}
	if err := runUnpack([]string{"-frame", "9", out, prefix}); err == nil {
		t.Error("unknown label should fail")
	}
}

func TestPackFlagCodecWithPruning(t *testing.T) {
	// The flag-driven path must embed a spec that round-trips keep=: a
	// store packed with -keep 0.5 has to decode with its own header.
	dir := t.TempDir()
	inputs, _ := packInputs(t, dir, 2, 8, 8)
	out := filepath.Join(dir, "pruned.gbz")
	args := []string{"-shape", "8,8", "-block", "4,4", "-float", "float64", "-keep", "0.5", out}
	if err := runPack(append(args, inputs...)); err != nil {
		t.Fatalf("pack: %v", err)
	}
	r, err := store.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if want := "keep=0.5"; !strings.Contains(r.Spec(), want) {
		t.Errorf("spec %q should contain %q", r.Spec(), want)
	}
	if _, err := r.DecompressLabel(1); err != nil {
		t.Errorf("store packed with pruning does not decode itself: %v", err)
	}
}

func TestPackFailureLeavesNoPartialStore(t *testing.T) {
	// A mid-pack error must not clobber an existing store at the output
	// path or leave a truncated temp file behind.
	dir := t.TempDir()
	inputs, _ := packInputs(t, dir, 2, 8, 8)
	out := filepath.Join(dir, "keep.gbz")
	if err := runPack(append([]string{"-shape", "8,8", out}, inputs...)); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]string{"-shape", "8,8", out, inputs[0]}, filepath.Join(dir, "missing.f64"))
	if err := runPack(bad); err == nil {
		t.Fatal("pack with a missing frame should fail")
	}
	after, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("failed pack clobbered the existing store")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".goblaz-pack-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestStoreCLIErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	writeRaw(t, in, make([]float64, 16))

	if err := runPack([]string{filepath.Join(dir, "o.gbz"), in}); err == nil {
		t.Error("pack without -shape should fail")
	}
	if err := runPack([]string{"-shape", "4,4", filepath.Join(dir, "o.gbz")}); err == nil {
		t.Error("pack without frames should fail")
	}
	if err := runPack([]string{"-shape", "8,8", filepath.Join(dir, "o.gbz"), in}); err == nil {
		t.Error("pack with wrong-sized frame should fail")
	}
	if err := runUnpack([]string{in, filepath.Join(dir, "p")}); err == nil {
		t.Error("unpack of a non-store should fail")
	}
	if err := runInspect([]string{in}); err == nil {
		t.Error("inspect of a non-store should fail")
	}
	if err := runInspect(nil); err == nil {
		t.Error("inspect without a path should fail")
	}
}

func TestServeHandler(t *testing.T) {
	const rows, cols = 8, 8
	dir := t.TempDir()
	inputs, frames := packInputs(t, dir, 2, rows, cols)
	out := filepath.Join(dir, "s.gbz")
	if err := runPack(append([]string{"-shape", "8,8", "-codec", "zfp:rate=32", out}, inputs...)); err != nil {
		t.Fatal(err)
	}
	r, err := store.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv := httptest.NewServer(newStoreHandler(r))
	defer srv.Close()

	get := func(path string, wantStatus int) []byte {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantStatus)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	get("/healthz", 200)

	var meta struct {
		Spec   string `json:"spec"`
		Frames int    `json:"frames"`
	}
	if err := json.Unmarshal(get("/v1/store", 200), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Spec != "zfp:rate=32" || meta.Frames != 2 {
		t.Errorf("/v1/store = %+v", meta)
	}

	var index []frameMeta
	if err := json.Unmarshal(get("/v1/frames", 200), &index); err != nil {
		t.Fatal(err)
	}
	if len(index) != 2 || index[1].Label != 1 || index[1].Length <= 0 {
		t.Errorf("/v1/frames = %+v", index)
	}

	// A served frame decodes to the zfp round trip of the original.
	body := get("/v1/frames/1", 200)
	if len(body) != rows*cols*8 {
		t.Fatalf("frame body = %d bytes, want %d", len(body), rows*cols*8)
	}
	got := make([]float64, rows*cols)
	for i := range got {
		got[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
	}
	cd, _ := codec.Lookup("zfp:rate=32")
	c, _ := cd.Compress(frames[1])
	want, _ := cd.Decompress(c)
	if tensor.FromSlice(got, rows, cols).MaxAbsDiff(want) != 0 {
		t.Error("served frame differs from codec round trip")
	}

	payload := get("/v1/frames/0/payload", 200)
	direct, err := r.Payload(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != string(direct) {
		t.Error("served payload differs from store payload")
	}

	get("/v1/frames/7", 404)
	get("/v1/frames/banana", 400)
}
