package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/api/httpapi"
	"repro/internal/codec"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/tensor"
)

// packInputs writes n raw frame files and returns their paths plus the
// frame tensors.
func packInputs(t *testing.T, dir string, n, rows, cols int) ([]string, []*tensor.Tensor) {
	t.Helper()
	paths := make([]string, n)
	frames := make([]*tensor.Tensor, n)
	for k := 0; k < n; k++ {
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = math.Sin(float64(i)/5) + float64(k)*0.5
		}
		paths[k] = filepath.Join(dir, "frame"+string(rune('a'+k))+".f64")
		writeRaw(t, paths[k], data)
		frames[k] = tensor.FromSlice(data, rows, cols)
	}
	return paths, frames
}

func TestPackUnpackRoundTripEveryCodec(t *testing.T) {
	const rows, cols, n = 24, 16, 3
	for _, name := range codec.List() {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			inputs, frames := packInputs(t, dir, n, rows, cols)
			out := filepath.Join(dir, "series.gbz")

			args := []string{"-shape", "24,16", "-codec", name, "-workers", "2", out}
			if err := runPack(append(args, inputs...)); err != nil {
				t.Fatalf("pack: %v", err)
			}
			if err := runInspect([]string{out}); err != nil {
				t.Fatalf("inspect: %v", err)
			}
			prefix := filepath.Join(dir, "back")
			if err := runUnpack([]string{out, prefix}); err != nil {
				t.Fatalf("unpack: %v", err)
			}

			cd, err := codec.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < n; k++ {
				got, err := readTensor(prefix+string(rune('0'+k))+".f64", []int{rows, cols})
				if err != nil {
					t.Fatal(err)
				}
				// Bit-exact against the direct compress→decompress path:
				// the store must add no loss beyond the codec's own.
				c, err := cd.Compress(frames[k])
				if err != nil {
					t.Fatal(err)
				}
				want, err := cd.Decompress(c)
				if err != nil {
					t.Fatal(err)
				}
				if got.MaxAbsDiff(want) != 0 {
					t.Errorf("frame %d: unpack differs from direct codec round trip", k)
				}
			}
		})
	}
}

func TestUnpackSingleFrame(t *testing.T) {
	dir := t.TempDir()
	inputs, _ := packInputs(t, dir, 3, 8, 8)
	out := filepath.Join(dir, "s.gbz")
	if err := runPack(append([]string{"-shape", "8,8", out}, inputs...)); err != nil {
		t.Fatal(err)
	}
	prefix := filepath.Join(dir, "one")
	if err := runUnpack([]string{"-frame", "1", out, prefix}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(prefix + "1.f64"); err != nil {
		t.Errorf("frame 1 not unpacked: %v", err)
	}
	if _, err := os.Stat(prefix + "0.f64"); err == nil {
		t.Error("-frame 1 should not unpack frame 0")
	}
	if err := runUnpack([]string{"-frame", "9", out, prefix}); err == nil {
		t.Error("unknown label should fail")
	}
}

func TestPackFlagCodecWithPruning(t *testing.T) {
	// The flag-driven path must embed a spec that round-trips keep=: a
	// store packed with -keep 0.5 has to decode with its own header.
	dir := t.TempDir()
	inputs, _ := packInputs(t, dir, 2, 8, 8)
	out := filepath.Join(dir, "pruned.gbz")
	args := []string{"-shape", "8,8", "-block", "4,4", "-float", "float64", "-keep", "0.5", out}
	if err := runPack(append(args, inputs...)); err != nil {
		t.Fatalf("pack: %v", err)
	}
	r, err := store.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if want := "keep=0.5"; !strings.Contains(r.Spec(), want) {
		t.Errorf("spec %q should contain %q", r.Spec(), want)
	}
	if _, err := r.DecompressLabel(1); err != nil {
		t.Errorf("store packed with pruning does not decode itself: %v", err)
	}
}

func TestPackFailureLeavesNoPartialStore(t *testing.T) {
	// A mid-pack error must not clobber an existing store at the output
	// path or leave a truncated temp file behind.
	dir := t.TempDir()
	inputs, _ := packInputs(t, dir, 2, 8, 8)
	out := filepath.Join(dir, "keep.gbz")
	if err := runPack(append([]string{"-shape", "8,8", out}, inputs...)); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]string{"-shape", "8,8", out, inputs[0]}, filepath.Join(dir, "missing.f64"))
	if err := runPack(bad); err == nil {
		t.Fatal("pack with a missing frame should fail")
	}
	after, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("failed pack clobbered the existing store")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".goblaz-pack-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

// packShardedDataset packs n 16×16 frames as a shards-way dataset and
// returns the manifest path plus the paths of a parallel single-store
// pack of the same frames.
func packShardedDataset(t *testing.T, n, shards int) (manifest, single string) {
	t.Helper()
	dir := t.TempDir()
	inputs, _ := packInputs(t, dir, n, 16, 16)
	manifest = filepath.Join(dir, "ds.json")
	args := []string{"-shape", "16,16", "-codec", "goblaz:block=4x4,float=float64,index=int16"}
	if err := runPack(append(append(append([]string{}, args...), "-shards", fmt.Sprint(shards), manifest), inputs...)); err != nil {
		t.Fatalf("pack -shards: %v", err)
	}
	single = filepath.Join(dir, "single.gbz")
	if err := runPack(append(append(append([]string{}, args...), single), inputs...)); err != nil {
		t.Fatalf("pack: %v", err)
	}
	return manifest, single
}

func TestPackShardedMatchesSingleStoreCLI(t *testing.T) {
	// `goblaz query` must answer byte-identically from a manifest and
	// from a single store of the same frames — the CLI-level face of
	// the shard-vs-single property.
	manifest, single := packShardedDataset(t, 5, 3)
	man, err := shard.LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Shards) != 3 || man.Len() != 5 {
		t.Fatalf("manifest %+v", man)
	}
	for _, sh := range man.Shards {
		if _, err := os.Stat(filepath.Join(filepath.Dir(manifest), sh.Path)); err != nil {
			t.Fatalf("shard file missing: %v", err)
		}
	}

	args := []string{
		"-aggs", "mean,variance,stddev,min,max,l2norm",
		"-reduce", "mean,variance,min,max",
		"-metric", "mse", "-against", "0",
		"-region", "1,1:3,3", "-point", "2,2",
	}
	viaManifest, err := captureStdout(t, func() error { return runQuery(append(args, manifest)) })
	if err != nil {
		t.Fatalf("query manifest: %v", err)
	}
	viaSingle, err := captureStdout(t, func() error { return runQuery(append(args, single)) })
	if err != nil {
		t.Fatalf("query single: %v", err)
	}
	if len(viaManifest) == 0 || !strings.Contains(string(viaManifest), `"reduced"`) {
		t.Fatalf("manifest query output: %s", viaManifest)
	}
	// Numeric comparison, not byte equality: the reduction folds shard
	// partials in a different floating-point grouping than the
	// single-store frame fold, which is tolerance-equal by contract.
	var fromManifest, fromSingle any
	if err := json.Unmarshal(viaManifest, &fromManifest); err != nil {
		t.Fatalf("manifest output is not JSON: %v", err)
	}
	if err := json.Unmarshal(viaSingle, &fromSingle); err != nil {
		t.Fatalf("single output is not JSON: %v", err)
	}
	if !jsonAlmostEqual(fromManifest, fromSingle) {
		t.Errorf("manifest and single-store results differ:\n--- manifest ---\n%s\n--- single ---\n%s", viaManifest, viaSingle)
	}

	// inspect resolves a manifest like a store.
	out, err := captureStdout(t, func() error { return runInspect([]string{manifest}) })
	if err != nil {
		t.Fatalf("inspect manifest: %v", err)
	}
	if !strings.Contains(string(out), "frames:  5") {
		t.Errorf("inspect output: %s", out)
	}
}

func TestPackSingleShardIsStillAManifest(t *testing.T) {
	// -shards decides the output format: 1 means a one-shard dataset,
	// not a silent fall-back to a bare store at the manifest path.
	manifest, _ := packShardedDataset(t, 3, 1)
	man, err := shard.LoadManifest(manifest)
	if err != nil {
		t.Fatalf("pack -shards 1 did not write a manifest: %v", err)
	}
	if len(man.Shards) != 1 || man.Len() != 3 {
		t.Errorf("manifest %+v, want one 3-frame shard", man)
	}
	if _, err := captureStdout(t, func() error { return runQuery([]string{"-aggs", "mean", manifest}) }); err != nil {
		t.Errorf("query over 1-shard manifest: %v", err)
	}
}

// jsonAlmostEqual compares decoded JSON values, with numbers equal
// within 1e-9 relative tolerance.
func jsonAlmostEqual(a, b any) bool {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok || len(av) != len(bv) {
			return false
		}
		for k, v := range av {
			w, ok := bv[k]
			if !ok || !jsonAlmostEqual(v, w) {
				return false
			}
		}
		return true
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !jsonAlmostEqual(av[i], bv[i]) {
				return false
			}
		}
		return true
	case float64:
		bv, ok := b.(float64)
		if !ok {
			return false
		}
		scale := math.Max(1, math.Max(math.Abs(av), math.Abs(bv)))
		return math.Abs(av-bv) <= 1e-9*scale
	default:
		return a == b
	}
}

func TestStoreCLIErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	writeRaw(t, in, make([]float64, 16))

	if err := runPack([]string{filepath.Join(dir, "o.gbz"), in}); err == nil {
		t.Error("pack without -shape should fail")
	}
	if err := runPack([]string{"-shape", "4,4", filepath.Join(dir, "o.gbz")}); err == nil {
		t.Error("pack without frames should fail")
	}
	if err := runPack([]string{"-shape", "8,8", filepath.Join(dir, "o.gbz"), in}); err == nil {
		t.Error("pack with wrong-sized frame should fail")
	}
	if err := runUnpack([]string{in, filepath.Join(dir, "p")}); err == nil {
		t.Error("unpack of a non-store should fail")
	}
	if err := runInspect([]string{in}); err == nil {
		t.Error("inspect of a non-store should fail")
	}
	if err := runInspect(nil); err == nil {
		t.Error("inspect without a path should fail")
	}
}

func TestServeHandler(t *testing.T) {
	const rows, cols = 8, 8
	dir := t.TempDir()
	inputs, frames := packInputs(t, dir, 2, rows, cols)
	out := filepath.Join(dir, "s.gbz")
	if err := runPack(append([]string{"-shape", "8,8", "-codec", "zfp:rate=32", out}, inputs...)); err != nil {
		t.Fatal(err)
	}
	r, err := store.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv := httptest.NewServer(httpapi.New(api.NewLocal(r, query.New(r, query.Options{})), nil, httpapi.Options{}))
	defer srv.Close()

	get := func(path string, wantStatus int) []byte {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantStatus)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	get("/healthz", 200)

	var meta struct {
		Spec   string `json:"spec"`
		Frames int    `json:"frames"`
	}
	if err := json.Unmarshal(get("/v1/store", 200), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Spec != "zfp:rate=32" || meta.Frames != 2 {
		t.Errorf("/v1/store = %+v", meta)
	}

	var index []api.FrameInfo
	if err := json.Unmarshal(get("/v1/frames", 200), &index); err != nil {
		t.Fatal(err)
	}
	if len(index) != 2 || index[1].Label != 1 || index[1].Length <= 0 {
		t.Errorf("/v1/frames = %+v", index)
	}

	// A served frame decodes to the zfp round trip of the original.
	body := get("/v1/frames/1", 200)
	if len(body) != rows*cols*8 {
		t.Fatalf("frame body = %d bytes, want %d", len(body), rows*cols*8)
	}
	got := make([]float64, rows*cols)
	for i := range got {
		got[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
	}
	cd, _ := codec.Lookup("zfp:rate=32")
	c, _ := cd.Compress(frames[1])
	want, _ := cd.Decompress(c)
	if tensor.FromSlice(got, rows, cols).MaxAbsDiff(want) != 0 {
		t.Error("served frame differs from codec round trip")
	}

	payload := get("/v1/frames/0/payload", 200)
	direct, err := r.Payload(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != string(direct) {
		t.Error("served payload differs from store payload")
	}

	get("/v1/frames/7", 404)
	get("/v1/frames/banana", 400)
}

// serveStore packs a store with the given spec and serves it with a
// query engine attached.
func serveStore(t *testing.T, spec string, n, rows, cols int) (*httptest.Server, []*tensor.Tensor) {
	t.Helper()
	dir := t.TempDir()
	inputs, frames := packInputs(t, dir, n, rows, cols)
	out := filepath.Join(dir, "s.gbz")
	shape := fmt.Sprintf("%d,%d", rows, cols)
	if err := runPack(append([]string{"-shape", shape, "-codec", spec, out}, inputs...)); err != nil {
		t.Fatal(err)
	}
	r, err := store.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	srv := httptest.NewServer(httpapi.New(api.NewLocal(r, query.New(r, query.Options{CacheBytes: 1 << 20})), nil, httpapi.Options{}))
	t.Cleanup(srv.Close)
	return srv, frames
}

// postQuery POSTs a query request body and returns the status and body.
func postQuery(t *testing.T, srv *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestQueryEndpointCompressedSpace(t *testing.T) {
	// The acceptance path: a mean aggregate over a multi-frame goblaz
	// store answers without decoding frames.
	srv, frames := serveStore(t, "goblaz:block=4x4,float=float64,index=int16", 3, 16, 16)
	status, body := postQuery(t, srv, `{"select":{},"aggregates":["mean","variance"]}`)
	if status != 200 {
		t.Fatalf("POST /v1/query = %d: %s", status, body)
	}
	var res query.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.ExecutedInCompressedSpace {
		t.Error("goblaz mean/variance must execute in compressed space")
	}
	if len(res.Frames) != 3 {
		t.Fatalf("got %d frame results, want 3", len(res.Frames))
	}
	for i, f := range res.Frames {
		if !f.ExecutedInCompressedSpace {
			t.Errorf("frame %d decoded", i)
		}
		// vs the original frame, so tolerance covers quantization.
		want := frames[i].Mean()
		if got := float64(f.Aggregates["mean"]); math.Abs(got-want) > 1e-4 {
			t.Errorf("frame %d mean = %g, want ≈ %g", i, got, want)
		}
	}
}

func TestQueryEndpointDecodeFallback(t *testing.T) {
	// The same query against an sz: store succeeds via decode fallback.
	srv, frames := serveStore(t, "sz:mode=curvefit,tol=1e-4", 3, 16, 16)
	status, body := postQuery(t, srv, `{"select":{},"aggregates":["mean","variance"]}`)
	if status != 200 {
		t.Fatalf("POST /v1/query = %d: %s", status, body)
	}
	var res query.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.ExecutedInCompressedSpace {
		t.Error("sz has no compressed-space ops; flag must be false")
	}
	for i, f := range res.Frames {
		if got, want := float64(f.Aggregates["mean"]), frames[i].Mean(); math.Abs(got-want) > 1e-3 {
			t.Errorf("frame %d mean = %g, want ≈ %g", i, got, want)
		}
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	srv, _ := serveStore(t, "zfp:rate=16", 2, 8, 8)
	for _, body := range []string{
		`{not json`,
		`{"select":{},"aggregates":["median"]}`,           // unknown aggregate
		`{"select":{"labels":"9"},"aggregates":["mean"]}`, // matches nothing
		`{"select":{},"bananas":true}`,                    // unknown field
	} {
		if status, _ := postQuery(t, srv, body); status != 400 {
			t.Errorf("POST %s = %d, want 400", body, status)
		}
	}
}

func TestStatsAndRegionRoutes(t *testing.T) {
	srv, frames := serveStore(t, "goblaz:block=4x4,float=float64,index=int16", 2, 16, 16)
	client := srv.Client()

	resp, err := client.Get(srv.URL + "/v1/frames/1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var fr query.FrameResult
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"mean", "variance", "stddev", "min", "max", "l2norm"} {
		if _, ok := fr.Aggregates[kind]; !ok {
			t.Errorf("stats missing %q: %+v", kind, fr.Aggregates)
		}
	}
	if fr.Aggregates["min"] > fr.Aggregates["mean"] || fr.Aggregates["mean"] > fr.Aggregates["max"] {
		t.Errorf("min/mean/max out of order: %+v", fr.Aggregates)
	}

	resp, err = client.Get(srv.URL + "/v1/frames/0/region?offset=2,3&shape=3,4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("region = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if fr.Region == nil || len(fr.Region.Values) != 12 {
		t.Fatalf("region result %+v", fr.Region)
	}
	if !fr.ExecutedInCompressedSpace {
		t.Error("goblaz region read should be a partial decode")
	}
	// Compared against the original (pre-compression) frame, so the
	// tolerance covers int16 quantization loss.
	if got, want := fr.Region.Values[0], frames[0].At(2, 3); math.Abs(got-want) > 1e-3 {
		t.Errorf("region[0] = %g, want ≈ %g", got, want)
	}

	// Route-level validation.
	for _, path := range []string{
		"/v1/frames/9/stats",                         // no such frame
		"/v1/frames/0/region?offset=2&shape=3,4",     // dim mismatch
		"/v1/frames/0/region?offset=a,b&shape=1,1",   // not integers
		"/v1/frames/0/region?offset=20,20&shape=4,4", // out of bounds
	} {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 && resp.StatusCode != 404 {
			t.Errorf("GET %s = %d, want 4xx", path, resp.StatusCode)
		}
	}
}

func TestFrameETag(t *testing.T) {
	srv, _ := serveStore(t, "zfp:rate=16", 2, 8, 8)
	client := srv.Client()

	for _, path := range []string{"/v1/frames/0", "/v1/frames/0/payload"} {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		etag := resp.Header.Get("ETag")
		if len(etag) != 10 || etag[0] != '"' {
			t.Fatalf("GET %s ETag = %q, want quoted crc32", path, etag)
		}

		req, _ := http.NewRequest("GET", srv.URL+path, nil)
		req.Header.Set("If-None-Match", etag)
		resp, err = client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("GET %s with matching If-None-Match = %d, want 304", path, resp.StatusCode)
		}
		if len(body) != 0 {
			t.Errorf("304 for %s carried a %d-byte body", path, len(body))
		}

		req.Header.Set("If-None-Match", `"00000000", `+etag)
		if resp, err = client.Do(req); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("ETag in a list should still match, got %d", resp.StatusCode)
		}

		req.Header.Set("If-None-Match", `"deadbeef"`)
		if resp, err = client.Do(req); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("stale If-None-Match should refetch, got %d", resp.StatusCode)
		}
	}
}

func TestStatsRouteNonCanonicalLabel(t *testing.T) {
	// "01" resolves to the frame labeled 1 everywhere else on the API;
	// the convenience routes must agree instead of 400ing.
	srv, _ := serveStore(t, "zfp:rate=16", 2, 8, 8)
	resp, err := srv.Client().Get(srv.URL + "/v1/frames/01/stats?aggs=mean")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stats for label 01 = %d, want 200", resp.StatusCode)
	}
	var fr query.FrameResult
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if fr.Label != 1 {
		t.Errorf("label = %d, want 1", fr.Label)
	}
}

func TestQueryEndpointInfinitePSNR(t *testing.T) {
	// Self-PSNR is +Inf; the endpoint answers 200 with "+Inf", not 500.
	srv, _ := serveStore(t, "goblaz:block=4x4,float=float64,index=int16", 2, 8, 8)
	status, body := postQuery(t, srv, `{"select":{},"metric":{"kind":"psnr","against":0}}`)
	if status != 200 {
		t.Fatalf("POST = %d: %s", status, body)
	}
	if !strings.Contains(string(body), `"+Inf"`) {
		t.Errorf(`response should encode the self-PSNR as "+Inf": %s`, body)
	}
}
