package main

// The query subcommand runs compressed-domain query plans — the same
// ones POST /v1/query serves — against a store file or a serving URL:
//
//	goblaz query -aggs mean,stddev series.gbz
//	goblaz query -aggs mean http://localhost:8080          (same plans, over HTTP)
//	goblaz query -labels '1?' -metric mse -against 0 series.gbz
//	goblaz query -region 3,5:7,9 -timeout 10s series.gbz
//	goblaz query -req '{"select":{},"aggregates":["mean"]}' series.gbz
//	goblaz query -req @request.json series.gbz        (or -req - for stdin)
//
// The store argument resolves through api.Backend (backend.go), so the
// local path and the URL produce identical results on the same store.
// -timeout deadlines the whole run; the engine (or the SDK) abandons
// remaining frames when it expires. The result is the engine's JSON,
// indented, on stdout.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/query"
)

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	reqJSON := fs.String("req", "", `full request JSON: inline, "@FILE", or "-" for stdin (overrides the query flags)`)
	labels := fs.String("labels", "", `label glob selecting frames, e.g. "1?" (default all)`)
	from := fs.Int("from", -1, "first frame position selected (inclusive)")
	to := fs.Int("to", -1, "frame position selection end (exclusive)")
	aggs := fs.String("aggs", "", "comma-separated aggregates: mean,variance,stddev,min,max,l2norm")
	reduce := fs.String("reduce", "", "comma-separated dataset-level aggregates over all selected frames together")
	metric := fs.String("metric", "", "pairwise metric: mse|psnr|dot|cosine")
	against := fs.String("against", "", "reference frame label for -metric (omit to compare 2 selected frames)")
	peak := fs.Float64("peak", 0, "peak value for -metric psnr (default 1)")
	region := fs.String("region", "", `region read "OFFSET:SHAPE", e.g. "3,5:7,9"`)
	point := fs.String("point", "", `point read multi-index, e.g. "10,12"`)
	cacheBytes := fs.Int64("cache-bytes", 0, "decoded-frame LRU cache budget in bytes (one-shot runs rarely benefit)")
	timeout := fs.Duration("timeout", 0, "overall deadline; expired work returns a canceled error (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("query needs one store path or URL")
	}

	var req *query.Request
	var err error
	if *reqJSON != "" {
		if req, err = loadQueryRequest(*reqJSON); err != nil {
			return err
		}
	} else {
		req = &query.Request{Select: query.Selector{Labels: *labels}}
		if *from >= 0 {
			req.Select.From = from
		}
		if *to >= 0 {
			req.Select.To = to
		}
		if *aggs != "" {
			req.Aggregates = strings.Split(*aggs, ",")
		}
		if *reduce != "" {
			req.Reduce = strings.Split(*reduce, ",")
		}
		if *metric == "" && (*against != "" || *peak != 0) {
			return fmt.Errorf("-against and -peak need -metric")
		}
		if *metric != "" {
			m := &query.MetricRequest{Kind: *metric, Peak: *peak}
			if *against != "" {
				label, err := strconv.Atoi(*against)
				if err != nil {
					return fmt.Errorf("bad -against label %q", *against)
				}
				m.Against = &label
			}
			req.Metric = m
		}
		if *region != "" {
			offsetStr, shapeStr, ok := strings.Cut(*region, ":")
			if !ok {
				return fmt.Errorf(`bad -region %q (want "OFFSET:SHAPE")`, *region)
			}
			reg := &query.RegionRequest{}
			if reg.Offset, err = parseInts(offsetStr); err != nil {
				return err
			}
			if reg.Shape, err = parseInts(shapeStr); err != nil {
				return err
			}
			req.Region = reg
		}
		if *point != "" {
			if req.Point, err = parseInts(*point); err != nil {
				return err
			}
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *cacheBytes != 0 && isServiceURL(fs.Arg(0)) {
		fmt.Fprintln(os.Stderr, "goblaz: -cache-bytes has no effect on a serving URL (the server's own cache governs)")
	}
	// No per-attempt client timeout: the run's deadline (ctx above) is
	// the only bound, so a long query behaves identically over a URL
	// and over a path.
	b, closeB, err := openBackend(fs.Arg(0), query.Options{CacheBytes: *cacheBytes}, 0)
	if err != nil {
		return err
	}
	defer closeB()
	res, err := b.Query(ctx, req)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// loadQueryRequest parses the -req argument: inline JSON, @FILE, or -
// for stdin. Unknown fields are rejected so a typoed key fails loudly
// instead of silently querying less than asked.
func loadQueryRequest(arg string) (*query.Request, error) {
	var blob []byte
	var err error
	switch {
	case arg == "-":
		if blob, err = io.ReadAll(os.Stdin); err != nil {
			return nil, err
		}
	case strings.HasPrefix(arg, "@"):
		if blob, err = os.ReadFile(arg[1:]); err != nil {
			return nil, err
		}
	default:
		blob = []byte(arg)
	}
	dec := json.NewDecoder(strings.NewReader(string(blob)))
	dec.DisallowUnknownFields()
	req := &query.Request{}
	if err := dec.Decode(req); err != nil {
		return nil, fmt.Errorf("bad request JSON: %w", err)
	}
	return req, nil
}
