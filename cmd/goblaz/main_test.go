package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

func writeRaw(t *testing.T, path string, data []float64) {
	t.Helper()
	raw := make([]byte, len(data)*8)
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompressDecompressRoundTripCLI(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	blz := filepath.Join(dir, "out.blz")
	back := filepath.Join(dir, "back.f64")

	const rows, cols = 24, 16
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = math.Sin(float64(i) / 7)
	}
	writeRaw(t, in, data)

	if err := runCompress([]string{"-shape", "24,16", "-block", "8,8", in, blz}); err != nil {
		t.Fatal(err)
	}
	if err := runInfo([]string{blz}); err != nil {
		t.Fatal(err)
	}
	if err := runDecompress([]string{blz, back}); err != nil {
		t.Fatal(err)
	}
	got, err := readTensor(back, []int{rows, cols})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.FromSlice(data, rows, cols)
	if e := got.MaxAbsDiff(want); e > 0.01 {
		t.Errorf("CLI round trip error %g", e)
	}
}

func TestStatsCLI(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i)
	}
	writeRaw(t, in, data)
	if err := runStats([]string{"-shape", "8,8", "-block", "4,4", in}); err != nil {
		t.Fatal(err)
	}
	// With pruning.
	if err := runStats([]string{"-shape", "8,8", "-block", "4,4", "-keep", "0.5", in}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	writeRaw(t, in, make([]float64, 16))

	if err := runCompress([]string{in, "out"}); err == nil {
		t.Error("missing -shape should fail")
	}
	if err := runCompress([]string{"-shape", "4,4", in}); err == nil {
		t.Error("missing OUT should fail")
	}
	if err := runCompress([]string{"-shape", "5,5", in, filepath.Join(dir, "o")}); err == nil {
		t.Error("shape/file size mismatch should fail")
	}
	if err := runCompress([]string{"-shape", "4,4", "-block", "3,3", in, filepath.Join(dir, "o")}); err == nil {
		t.Error("non-power-of-two block should fail")
	}
	if err := runDecompress([]string{"nonexistent", "out"}); err == nil {
		t.Error("missing input should fail")
	}
	if err := runDecompress([]string{in}); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := runInfo([]string{in}); err == nil {
		t.Error("info on raw file should fail (bad magic)")
	}
	if err := runStats([]string{"-shape", "4,4"}); err == nil {
		t.Error("stats without file should fail")
	}
}

func TestCodecFlagRoundTripCLI(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	// Smooth 2-D data: every backend (including the very lossy blaz
	// baseline) reconstructs it within a small bound.
	const rows, cols = 24, 16
	data := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			data[r*cols+c] = float64(r)/rows + float64(c)/cols
		}
	}
	writeRaw(t, in, data)
	want := tensor.FromSlice(data, rows, cols)

	for _, tc := range []struct {
		spec string
		tol  float64
	}{
		{"zfp:rate=32", 1e-4},
		{"sz:mode=curvefit,tol=1e-4", 1e-4},
		{"blaz", 0.05},
		{"goblaz:block=8x8,float=float64", 1e-3},
	} {
		out := filepath.Join(dir, "out.bin")
		back := filepath.Join(dir, "back.f64")
		if err := runCompress([]string{"-shape", "24,16", "-codec", tc.spec, in, out}); err != nil {
			t.Fatalf("%s: compress: %v", tc.spec, err)
		}
		if err := runInfo([]string{out}); err != nil {
			t.Fatalf("%s: info: %v", tc.spec, err)
		}
		// No flags needed: the container embeds the codec spec.
		if err := runDecompress([]string{out, back}); err != nil {
			t.Fatalf("%s: decompress: %v", tc.spec, err)
		}
		got, err := readTensor(back, []int{rows, cols})
		if err != nil {
			t.Fatal(err)
		}
		if e := got.MaxAbsDiff(want); e > tc.tol {
			t.Errorf("%s: CLI round trip error %g exceeds %g", tc.spec, e, tc.tol)
		}
	}
}

func TestCodecFlagStatsAndErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	writeRaw(t, in, make([]float64, 64))

	if err := runStats([]string{"-shape", "8,8", "-codec", "zfp:rate=16", in}); err != nil {
		t.Fatalf("stats -codec: %v", err)
	}
	if err := runCodecs(nil); err != nil {
		t.Fatalf("codecs: %v", err)
	}
	if err := runCodecs([]string{"extra"}); err == nil {
		t.Error("codecs with arguments should fail")
	}
	out := filepath.Join(dir, "out.bin")
	if err := runCompress([]string{"-shape", "8,8", "-codec", "nosuch", in, out}); err == nil {
		t.Error("unknown codec spec should fail")
	}
	if err := runCompress([]string{"-shape", "8,8", "-codec", "zfp:rate=banana", in, out}); err == nil {
		t.Error("malformed codec spec should fail")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 3, 224,224 ")
	if err != nil || len(got) != 3 || got[0] != 3 || got[2] != 224 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("3,x"); err == nil {
		t.Error("bad int should fail")
	}
}

func TestParseOptionsDefaults(t *testing.T) {
	o, rest, err := parseOptions("t", []string{"-shape", "8,8", "a", "b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0] != "a" {
		t.Fatalf("rest = %v", rest)
	}
	if len(o.block) != 2 || o.block[0] != 4 {
		t.Fatalf("default block = %v", o.block)
	}
	if _, _, err := parseOptions("t", []string{"-shape", "8,8", "-float", "float128"}, nil); err == nil {
		t.Error("bad float type should fail")
	}
	if _, _, err := parseOptions("t", []string{"-shape", "8,8", "-index", "uint8"}, nil); err == nil {
		t.Error("bad index type should fail")
	}
	if _, _, err := parseOptions("t", []string{"-shape", "8,8", "-transform", "fft"}, nil); err == nil {
		t.Error("bad transform should fail")
	}
}
