package main

// End-to-end coverage for streaming ingest: the HTTP route through the
// SDK client against a live appendable store behind admission control,
// the `goblaz ingest` subcommand against a local store path, and the
// loadtest generator's ingest mix producing the benchmark artifact.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/api/httpapi"
	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/store"
)

const ingestTestSpec = "goblaz:block=4x4,float=float64,index=int16"

func ingestTestFrame(label, rows, cols int) api.IngestFrame {
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = math.Sin(float64(i)/9+float64(label)) + 0.2*float64(label)
	}
	return api.IngestFrame{Label: label, Shape: []int{rows, cols}, Data: data}
}

func TestServeIngestEndToEnd(t *testing.T) {
	// A live appendable store mounted as a dataset behind the admission
	// controller, driven purely through the SDK: ingest batches, watch
	// commits make frames queryable, and hit the duplicate-label guard.
	path := filepath.Join(t.TempDir(), "live.gbz")
	s, err := ingest.Create(path, ingest.Options{Spec: ingestTestSpec, CommitFrames: 2, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	lim := api.Limit(s, api.LimitOptions{MaxConcurrent: 4, MaxQueue: 4})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: httpapi.New(lim, nil, httpapi.Options{
		Datasets: map[string]api.Backend{"live": lim},
	})}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	c, err := api.NewClient(fmt.Sprintf("http://%s/v1/datasets/live", ln.Addr()), api.ClientOptions{
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res, err := c.Ingest(ctx, []api.IngestFrame{ingestTestFrame(0, 8, 8), ingestTestFrame(1, 8, 8)})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if res.Accepted != 2 || !res.Committed || res.Frames != 2 {
		t.Fatalf("first batch result = %+v, want 2 accepted and committed", res)
	}
	res, err = c.Ingest(ctx, []api.IngestFrame{ingestTestFrame(2, 8, 8)})
	if err != nil {
		t.Fatalf("ingest pending frame: %v", err)
	}
	if res.Committed || res.Pending != 1 {
		t.Fatalf("below-threshold batch result = %+v, want uncommitted with 1 pending", res)
	}

	// Only committed frames are visible to reads.
	infos, err := c.Frames(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("client sees %d frames, want 2 committed", len(infos))
	}
	fr, err := c.Frame(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := ingestTestFrame(1, 8, 8)
	for i := range want.Data {
		if d := math.Abs(fr.Data[i] - want.Data[i]); d > 1e-3 { // codec is lossy
			t.Fatalf("frame 1 value %d off by %g", i, d)
		}
	}

	// Duplicate labels are rejected with a deterministic conflict —
	// this is what makes SDK retry replays safe.
	if _, err := c.Ingest(ctx, []api.IngestFrame{ingestTestFrame(0, 8, 8)}); api.CodeOf(err) != api.CodeConflict {
		t.Fatalf("duplicate label error = %v (%s), want %s", err, api.CodeOf(err), api.CodeConflict)
	}

	// An explicit commit surfaces the pending frame to queries.
	if err := s.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	qr, err := c.Query(ctx, &query.Request{
		Select:     query.Selector{Labels: "*"},
		Aggregates: []string{query.AggMean},
	})
	if err != nil {
		t.Fatalf("query after commit: %v", err)
	}
	if len(qr.Frames) != 3 {
		t.Fatalf("query sees %d frames after commit, want 3", len(qr.Frames))
	}
}

func TestIngestCLILocalStore(t *testing.T) {
	// `goblaz ingest` against a path creates the appendable store on
	// first use and appends on the next run, continuing the labels.
	dir := t.TempDir()
	storePath := filepath.Join(dir, "live.gbz")
	var files []string
	for i := 0; i < 3; i++ {
		f := ingestTestFrame(i, 4, 6)
		p := filepath.Join(dir, fmt.Sprintf("f%d.raw", i))
		writeRaw(t, p, f.Data)
		files = append(files, p)
	}

	out, err := captureStdout(t, func() error {
		return runIngest(append([]string{"-shape", "4,6", "-spec", ingestTestSpec, "-commit-every", "2", storePath}, files...))
	})
	if err != nil {
		t.Fatalf("ingest create run: %v", err)
	}
	if !strings.Contains(string(out), "ingested 3 frame(s)") {
		t.Errorf("unexpected ingest output: %s", out)
	}

	// Second run: no -spec needed, labels continue after the max.
	if _, err := captureStdout(t, func() error {
		return runIngest([]string{"-shape", "4,6", storePath, files[0]})
	}); err != nil {
		t.Fatalf("ingest append run: %v", err)
	}

	r, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	labels := map[int]bool{}
	for _, e := range r.Frames() {
		labels[e.Label] = true
	}
	for l := 0; l < 4; l++ {
		if !labels[l] {
			t.Errorf("store is missing label %d after two CLI runs (have %v)", l, labels)
		}
	}
}

func TestLoadtestIngestMix(t *testing.T) {
	// The loadtest generator with ingest in the mix drives reads and
	// writes through the same appendable store and reports write
	// throughput plus the WAL fsync tail in the benchmark artifact.
	// GOBLAZ_BENCH_OUT lets CI keep the artifact (BENCH_10.json).
	dir := t.TempDir()
	storePath := filepath.Join(dir, "live.gbz")
	s, err := ingest.Create(storePath, ingest.Options{Spec: ingestTestSpec, CommitFrames: 4})
	if err != nil {
		t.Fatal(err)
	}
	var seed []api.IngestFrame
	for i := 0; i < 4; i++ {
		seed = append(seed, ingestTestFrame(i, 8, 8))
	}
	if _, err := s.Ingest(context.Background(), seed); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(t.TempDir(), "bench.json")
	if p := os.Getenv("GOBLAZ_BENCH_OUT"); p != "" {
		out = p
	}
	if _, err := captureStdout(t, func() error {
		return runLoadtest([]string{
			"-duration", "300ms", "-workers", "2",
			"-mix", "query=1,frame=1,ingest=2",
			"-out", out, storePath,
		})
	}); err != nil {
		t.Fatalf("loadtest with ingest mix: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, blob)
	}
	if rep.Errors != 0 {
		t.Errorf("ingest-mix loadtest had %d errors", rep.Errors)
	}
	if rep.Ingest == nil {
		t.Fatalf("artifact has no ingest section: %+v", rep)
	}
	if rep.Ingest.Frames <= 0 || rep.Ingest.ThroughputFPS <= 0 {
		t.Errorf("ingest throughput not reported: %+v", rep.Ingest)
	}
	if rep.Ingest.WALFsyncCount == 0 {
		t.Errorf("WAL fsync histogram was never observed: %+v", rep.Ingest)
	}
	if rep.Mix["ingest"] == 0 {
		t.Errorf("mix counted no ingest requests: %+v", rep.Mix)
	}

	// The run's writes are committed by Close and survive reopening.
	r, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() <= 4 {
		t.Errorf("store holds %d frames after ingest loadtest, want > 4 seeded", r.Len())
	}
}
