package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/query"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) ([]byte, error) {
	t.Helper()
	rd, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = wr
	defer func() { os.Stdout = old }()
	done := make(chan []byte)
	go func() {
		blob, _ := io.ReadAll(rd)
		done <- blob
	}()
	ferr := fn()
	wr.Close()
	return <-done, ferr
}

// packQueryStore packs a 3-frame goblaz store and returns its path.
func packQueryStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	inputs, _ := packInputs(t, dir, 3, 16, 16)
	out := filepath.Join(dir, "q.gbz")
	args := []string{"-shape", "16,16", "-codec", "goblaz:block=4x4,float=float64,index=int16", out}
	if err := runPack(append(args, inputs...)); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestQueryCLIFlags(t *testing.T) {
	path := packQueryStore(t)
	blob, err := captureStdout(t, func() error {
		return runQuery([]string{"-aggs", "mean,stddev", "-labels", "[01]", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	var res query.Result
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("output is not result JSON: %v\n%s", err, blob)
	}
	if len(res.Frames) != 2 {
		t.Fatalf("selected %d frames, want 2", len(res.Frames))
	}
	if !res.ExecutedInCompressedSpace {
		t.Error("goblaz mean/stddev should run in compressed space")
	}
	for _, f := range res.Frames {
		if len(f.Aggregates) != 2 {
			t.Errorf("frame %d aggregates %v", f.Label, f.Aggregates)
		}
	}
}

func TestQueryCLIMetricAndRegion(t *testing.T) {
	path := packQueryStore(t)
	blob, err := captureStdout(t, func() error {
		return runQuery([]string{"-metric", "mse", "-against", "0", "-region", "2,3:4,4", "-point", "5,5", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	var res query.Result
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Frames {
		if f.Metric == nil || f.Region == nil || f.Point == nil {
			t.Fatalf("frame %d missing results: %+v", f.Label, f)
		}
		if len(f.Region.Values) != 16 {
			t.Errorf("frame %d region has %d values, want 16", f.Label, len(f.Region.Values))
		}
	}
}

func TestQueryCLIRequestFile(t *testing.T) {
	path := packQueryStore(t)
	reqPath := filepath.Join(t.TempDir(), "req.json")
	req := `{"select":{"from":1,"to":3},"metric":{"kind":"psnr","peak":2}}`
	if err := os.WriteFile(reqPath, []byte(req), 0o644); err != nil {
		t.Fatal(err)
	}
	blob, err := captureStdout(t, func() error {
		return runQuery([]string{"-req", "@" + reqPath, path})
	})
	if err != nil {
		t.Fatal(err)
	}
	var res query.Result
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatal(err)
	}
	if res.Pair == nil || res.Pair.Kind != "psnr" || res.Pair.A != 1 || res.Pair.B != 2 {
		t.Errorf("pair = %+v", res.Pair)
	}
}

func TestQueryCLIErrors(t *testing.T) {
	path := packQueryStore(t)
	cases := [][]string{
		{},                        // no store
		{"-aggs", "mean"},         // still no store
		{"-aggs", "median", path}, // unknown aggregate
		{"-region", "1,2", path},  // missing :SHAPE
		{"-against", "banana", "-metric", "mse", path}, // bad label
		{"-req", `{"bananas":1}`, path},                // unknown field
		{"-req", "@/does/not/exist", path},             // missing file
		{"-against", "0", "-aggs", "mean", path},       // -against without -metric
		{path},                                         // empty query
	}
	for _, args := range cases {
		if _, err := captureStdout(t, func() error { return runQuery(args) }); err == nil {
			t.Errorf("runQuery(%v) should fail", args)
		}
	}
}
