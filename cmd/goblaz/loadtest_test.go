package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/api"
)

func TestLoadtestSmoke(t *testing.T) {
	// A short closed-loop run against a real store must complete inside
	// the error budget and leave a well-formed benchmark artifact.
	path := packQueryStore(t)
	out := filepath.Join(t.TempDir(), "bench.json")
	_, err := captureStdout(t, func() error {
		return runLoadtest([]string{
			"-duration", "300ms", "-workers", "2",
			"-mix", "query=1,frame=1,region=2",
			"-out", out, path,
		})
	})
	if err != nil {
		t.Fatalf("loadtest: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, blob)
	}
	if rep.Bench != "loadtest" || rep.Requests <= 0 || rep.Workers != 2 {
		t.Errorf("artifact looks wrong: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Errorf("local loadtest had %d errors", rep.Errors)
	}
	if rep.LatencyMS.P50 <= 0 || rep.LatencyMS.P99 < rep.LatencyMS.P50 {
		t.Errorf("percentiles not ordered: %+v", rep.LatencyMS)
	}
	if rep.Mix["query"]+rep.Mix["frame"]+rep.Mix["region"] != rep.Requests {
		t.Errorf("mix counts %v do not add up to %d", rep.Mix, rep.Requests)
	}
}

func TestLoadtestOverHTTP(t *testing.T) {
	// The same generator pointed at a serving URL exercises the Client
	// SDK path end to end.
	path := packQueryStore(t)
	url := startServe(t, path)
	out := filepath.Join(t.TempDir(), "bench.json")
	if _, err := captureStdout(t, func() error {
		return runLoadtest([]string{
			"-duration", "300ms", "-workers", "2", "-rps", "50", "-out", out, url,
		})
	}); err != nil {
		t.Fatalf("loadtest over HTTP: %v", err)
	}
	var rep loadReport
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests <= 0 {
		t.Error("no requests completed over HTTP")
	}
	// Paced at 50 rps for ~300ms, the run must stay well under the
	// closed-loop request count — the token bucket is actually pacing.
	if rep.Requests > 60 {
		t.Errorf("paced run issued %d requests, pacing is not limiting", rep.Requests)
	}
}

func TestParseMix(t *testing.T) {
	uniform, err := parseMix("")
	if err != nil || uniform != [numOps]int{1, 1, 1} {
		t.Errorf("parseMix(\"\") = %v, %v", uniform, err)
	}
	w, err := parseMix("query=1,frame=0,region=4")
	if err != nil || w != [numOps]int{1, 0, 4} {
		t.Errorf("parseMix = %v, %v", w, err)
	}
	for _, bad := range []string{"query", "query=x", "nope=1", "query=0,frame=0,region=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) should fail", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	if p := percentile(ds, 0.50); p != 51*time.Millisecond {
		t.Errorf("p50 = %v", p)
	}
	if p := percentile(ds, 0.99); p != 100*time.Millisecond {
		t.Errorf("p99 = %v", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
}

func TestLimitMountsSharesDefaultLimiter(t *testing.T) {
	path := packQueryStore(t)
	var (
		def              api.Backend
		stores, datasets map[string]api.Backend
	)
	if _, err := captureStdout(t, func() error {
		var closeAll func()
		var err error
		def, stores, datasets, closeAll, err = openMounts([]string{path}, 0)
		if err == nil {
			t.Cleanup(closeAll)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	wrappedDef := limitMounts(def, stores, datasets, api.LimitOptions{MaxConcurrent: 4})
	if wrappedDef == def {
		t.Fatal("default mount was not wrapped")
	}
	if stores["q"] != wrappedDef { // packQueryStore writes q.gbz
		t.Error("default and named mounts must share one limiter instance")
	}
	if limitMounts(def, stores, datasets, api.LimitOptions{}) != def {
		t.Error("MaxConcurrent 0 must leave the default unwrapped")
	}
}
