package main

// The loadtest subcommand: a mixed-traffic generator for the v1 service
// layer. It drives aggregate queries, full-frame decodes, and region
// reads against any backend the CLI can open — a store path, a dataset
// manifest, or a serving URL — paced to a target RPS (or closed-loop
// when -rps 0), and reports a latency histogram (p50/p95/p99), the
// achieved throughput, and an error budget verdict. Results are written
// as a JSON benchmark artifact so runs can be diffed across commits.
//
//	goblaz loadtest -duration 30s -rps 200 -workers 16 out.gbz
//	goblaz loadtest -mix query=1,frame=2,region=4 http://localhost:8080
//	goblaz loadtest -duration 10s -cpuprofile cpu.out -out BENCH_6.json run.json

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/shard"
)

// opKind is one of the traffic classes in the mix.
type opKind int

const (
	opQuery opKind = iota
	opFrame
	opRegion
	opIngest
	numOps
)

var opNames = [numOps]string{"query", "frame", "region", "ingest"}

// sample is one completed request: what it was, how long it took, and
// how it ended.
type sample struct {
	op         opKind
	latency    time.Duration
	err        error
	overloaded bool
}

// loadReport is the benchmark artifact schema. Field names are stable:
// BENCH_*.json files are diffed across commits.
type loadReport struct {
	Bench      string  `json:"bench"`
	Target     string  `json:"target"`
	DurationS  float64 `json:"duration_s"`
	Workers    int     `json:"workers"`
	TargetRPS  float64 `json:"target_rps,omitempty"`
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	Overloaded int     `json:"overloaded"`
	ErrorRate  float64 `json:"error_rate"`
	Throughput float64 `json:"throughput_rps"`
	LatencyMS  struct {
		P50 float64 `json:"p50"`
		P95 float64 `json:"p95"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Mix    map[string]int `json:"mix"`
	Ingest *ingestReport  `json:"ingest,omitempty"`
	Server *serverDelta   `json:"server,omitempty"`
}

// ingestReport is the write-path section of the artifact, present when
// the mix includes ingest. Frame throughput comes from the client-side
// samples; the WAL fsync tail comes from the metrics registry — the
// in-process one for local appendable stores, the scraped server
// snapshot when -metrics-url points at the serving instance.
type ingestReport struct {
	Frames        int     `json:"frames"`
	ThroughputFPS float64 `json:"throughput_fps"`
	WALFsyncCount uint64  `json:"wal_fsync_count,omitempty"`
	WALFsyncP99MS float64 `json:"wal_fsync_p99_ms,omitempty"`
}

// serverDelta is the server-side view of a run: the change in the
// scraped /v1/debug/metrics snapshot between the start and the end of
// the load window. It attributes what the client-side numbers cannot —
// whether latency came from decode work or cache hits, and how much
// load the admission controller turned away.
type serverDelta struct {
	MetricsURL    string  `json:"metrics_url"`
	HTTPRequests  float64 `json:"http_requests"`
	CacheHits     float64 `json:"cache_hits"`
	CacheMisses   float64 `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	Coalesced     float64 `json:"coalesced"`
	Shed          float64 `json:"shed"`
	FramesDecoded float64 `json:"frames_decoded"`
}

// deltaOf diffs two flattened snapshots into the report section.
// Counters monotonically increase, so after-before is the run's share.
func deltaOf(url string, before, after map[string]float64) *serverDelta {
	d := &serverDelta{MetricsURL: url}
	sum := func(prefix string) float64 {
		var total float64
		for key, v := range after {
			if strings.HasPrefix(key, prefix) {
				total += v - before[key]
			}
		}
		return total
	}
	d.HTTPRequests = sum("goblaz_http_requests_total")
	d.CacheHits = sum("goblaz_query_cache_hits_total")
	d.CacheMisses = sum("goblaz_query_cache_misses_total")
	if lookups := d.CacheHits + d.CacheMisses; lookups > 0 {
		d.CacheHitRatio = d.CacheHits / lookups
	}
	d.Coalesced = sum("goblaz_query_cache_coalesced_total")
	d.Shed = sum("goblaz_limit_shed_total")
	d.FramesDecoded = sum("goblaz_query_frames_total{space=fallback}")
	return d
}

// parseMix parses "query=1,frame=2,region=4" into per-op weights. Ops
// left out get weight 0; an empty spec means uniform reads (ingest is
// opt-in — it mutates the target, so it never rides in by default).
func parseMix(spec string) ([numOps]int, error) {
	weights := [numOps]int{1, 1, 1, 0}
	if spec == "" {
		return weights, nil
	}
	weights = [numOps]int{}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return weights, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return weights, fmt.Errorf("bad mix weight %q", part)
		}
		found := false
		for op, opName := range opNames {
			if name == opName {
				weights[op] = w
				found = true
			}
		}
		if !found {
			return weights, fmt.Errorf("unknown op %q in mix (have query, frame, region, ingest)", name)
		}
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return weights, fmt.Errorf("mix %q has no positive weights", spec)
	}
	return weights, nil
}

// pickTable expands weights into a lookup slice for O(1) weighted
// sampling.
func pickTable(weights [numOps]int) []opKind {
	var table []opKind
	for op, w := range weights {
		for i := 0; i < w; i++ {
			table = append(table, opKind(op))
		}
	}
	return table
}

// loadTarget is everything a worker needs to build requests: the frame
// labels it can hit, the frame shape for region reads, and — when the
// mix writes — the ingest sink plus a label counter parked above every
// existing label so concurrent workers never collide.
type loadTarget struct {
	b      api.Backend
	ing    api.Ingestor
	labels []int
	shape  []int
	next   atomic.Int64
}

// newFrame builds one random frame of the target's shape for ingest,
// claiming a fresh label from the shared counter.
func (lt *loadTarget) newFrame(rng *rand.Rand) api.IngestFrame {
	n := 1
	for _, d := range lt.shape {
		n *= d
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return api.IngestFrame{Label: int(lt.next.Add(1) - 1), Shape: lt.shape, Data: data}
}

// fire issues one request of the given kind and classifies the result.
func (lt *loadTarget) fire(ctx context.Context, rng *rand.Rand, op opKind) sample {
	label := lt.labels[rng.Intn(len(lt.labels))]
	// Frame generation happens off the clock: the measured latency is
	// the ingest call, not the client-side random fill.
	var frames []api.IngestFrame
	if op == opIngest {
		frames = []api.IngestFrame{lt.newFrame(rng)}
	}
	start := time.Now()
	var err error
	switch op {
	case opQuery:
		_, err = lt.b.Query(ctx, &query.Request{
			Select:     query.Selector{Labels: strconv.Itoa(label)},
			Aggregates: []string{query.AggMean, query.AggMax},
		})
	case opFrame:
		_, err = lt.b.Frame(ctx, label)
	case opRegion:
		offset, shape := randomRegion(rng, lt.shape)
		_, err = lt.b.Region(ctx, label, offset, shape)
	case opIngest:
		_, err = lt.ing.Ingest(ctx, frames)
	}
	s := sample{op: op, latency: time.Since(start), err: err}
	if api.CodeOf(err) == api.CodeOverloaded {
		// Shed requests are the admission controller doing its job, not a
		// correctness failure: tracked separately from the error budget.
		s.err, s.overloaded = nil, true
	}
	return s
}

// randomRegion picks a small axis-aligned sub-array inside shape: up to
// 8 elements per dimension at a random valid offset.
func randomRegion(rng *rand.Rand, frameShape []int) (offset, shape []int) {
	offset = make([]int, len(frameShape))
	shape = make([]int, len(frameShape))
	for d, n := range frameShape {
		ext := min(8, n)
		shape[d] = 1 + rng.Intn(ext)
		offset[d] = rng.Intn(n - shape[d] + 1)
	}
	return offset, shape
}

func runLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	duration := fs.Duration("duration", 10*time.Second, "how long to generate load")
	workers := fs.Int("workers", 8, "concurrent request workers")
	rps := fs.Float64("rps", 0, "target request rate across all workers (0 = closed loop, as fast as the workers go)")
	mixSpec := fs.String("mix", "", `traffic mix weights, e.g. "query=1,frame=2,region=4" (default uniform)`)
	out := fs.String("out", "BENCH_6.json", "write the JSON benchmark artifact here (empty disables)")
	budget := fs.Float64("error-budget", 0, "maximum tolerated error rate before the run fails, e.g. 0.01")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "decoded-frame cache budget for in-process backends (0 disables)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the client side here")
	memprofile := fs.String("memprofile", "", "write a heap profile here after the run")
	metricsURL := fs.String("metrics-url", "", "scrape this server's /v1/debug/metrics before and after, embedding the delta in the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("loadtest needs one store path, manifest, or URL")
	}
	if *workers < 1 {
		return fmt.Errorf("loadtest needs at least one worker")
	}
	weights, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}

	target := fs.Arg(0)
	var (
		b      api.Backend
		closeB func() error
		ing    api.Ingestor
	)
	if weights[opIngest] > 0 && !isServiceURL(target) && !cluster.IsTopology(target) && !shard.IsManifest(target) {
		// A plain store path with ingest in the mix opens appendable, so
		// writes land in the WAL beside the file instead of being refused
		// by the read-only backend.
		s, err := ingest.Open(target, ingest.Options{CommitFrames: 64, CacheBytes: *cacheBytes})
		if err != nil {
			return err
		}
		b, closeB, ing = s, s.Close, s
	} else {
		var err error
		b, closeB, err = openBackend(target, query.Options{CacheBytes: *cacheBytes}, *timeout)
		if err != nil {
			return err
		}
		if weights[opIngest] > 0 {
			var ok bool
			if ing, ok = b.(api.Ingestor); !ok {
				closeB()
				return fmt.Errorf("mix includes ingest but %s does not accept it", target)
			}
		}
	}
	defer closeB()
	ctx := context.Background()
	infos, err := b.Frames(ctx)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		return fmt.Errorf("%s holds no frames to load-test against", fs.Arg(0))
	}
	labels := make([]int, len(infos))
	for i, e := range infos {
		labels[i] = e.Label
	}
	// One priming decode learns the frame shape for region requests and
	// warms any server-side cache out of the measured window.
	first, err := b.Frame(ctx, labels[0])
	if err != nil {
		return fmt.Errorf("priming frame %d: %w", labels[0], err)
	}
	lt := &loadTarget{b: b, ing: ing, labels: labels, shape: first.Shape}
	maxLabel := labels[0]
	for _, l := range labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	lt.next.Store(int64(maxLabel + 1))

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// The before-scrape comes after priming, so the warm-up decode does
	// not pollute the run's server-side delta.
	var before map[string]float64
	if *metricsURL != "" {
		snap, err := scrapeSnapshot(*metricsURL, *timeout)
		if err != nil {
			return fmt.Errorf("before-run metrics scrape: %w", err)
		}
		before = snap.Flatten()
	}

	table := pickTable(weights)
	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	// Open-loop pacing: a central ticker feeds a token bucket sized to
	// the worker pool, so a stalled backend sheds offered load instead of
	// queueing it forever (latencies stay honest under overload).
	var tokens chan struct{}
	if *rps > 0 {
		tokens = make(chan struct{}, *workers)
		interval := time.Duration(float64(time.Second) / *rps)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		go func() {
			for {
				select {
				case <-runCtx.Done():
					return
				case <-ticker.C:
					select {
					case tokens <- struct{}{}:
					default: // workers are behind: drop the tick
					}
				}
			}
		}()
	}

	results := make([][]sample, *workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + start.UnixNano()))
			for {
				if tokens != nil {
					select {
					case <-runCtx.Done():
						return
					case <-tokens:
					}
				} else if runCtx.Err() != nil {
					return
				}
				op := table[rng.Intn(len(table))]
				s := lt.fire(ctx, rng, op)
				if errors.Is(s.err, context.Canceled) || errors.Is(s.err, context.DeadlineExceeded) {
					return // the run window closed mid-request
				}
				results[w] = append(results[w], s)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}

	report := summarize(results, fs.Arg(0), elapsed, *workers, *rps)
	var serverSnap *obs.Snapshot
	if before != nil {
		snap, err := scrapeSnapshot(*metricsURL, *timeout)
		if err != nil {
			return fmt.Errorf("after-run metrics scrape: %w", err)
		}
		report.Server = deltaOf(*metricsURL, before, snap.Flatten())
		serverSnap = &snap
	}
	if weights[opIngest] > 0 {
		// WAL fsync latency lives wherever the store does: the local
		// registry for in-process appendable stores, the scraped server
		// snapshot for remote ones.
		snap := obs.Default.Snapshot()
		if serverSnap != nil {
			snap = *serverSnap
		}
		report.Ingest = ingestSection(results, elapsed, snap)
	}
	if *out != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("loadtest %s: %d requests in %.1fs (%.1f rps), %d errors, %d shed\n",
		fs.Arg(0), report.Requests, report.DurationS, report.Throughput, report.Errors, report.Overloaded)
	fmt.Printf("latency ms: p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
		report.LatencyMS.P50, report.LatencyMS.P95, report.LatencyMS.P99, report.LatencyMS.Max)
	if report.Ingest != nil {
		fmt.Printf("ingest: %d frames (%.1f frames/s), wal fsync p99=%.3fms over %d syncs\n",
			report.Ingest.Frames, report.Ingest.ThroughputFPS,
			report.Ingest.WALFsyncP99MS, report.Ingest.WALFsyncCount)
	}
	if report.Server != nil {
		fmt.Printf("server: %g http requests, cache hit ratio %.2f (%g hits / %g misses, %g coalesced), %g shed\n",
			report.Server.HTTPRequests, report.Server.CacheHitRatio,
			report.Server.CacheHits, report.Server.CacheMisses, report.Server.Coalesced, report.Server.Shed)
	}
	if report.Requests == 0 {
		return fmt.Errorf("no requests completed inside %v", *duration)
	}
	if report.ErrorRate > *budget {
		return fmt.Errorf("error rate %.4f exceeds budget %.4f (%d/%d failed)",
			report.ErrorRate, *budget, report.Errors, report.Requests)
	}
	return nil
}

// ingestSection builds the write-path report: successful frame count
// and throughput from the samples, WAL fsync tail from the registry
// snapshot's goblaz_ingest_wal_fsync_seconds family.
func ingestSection(results [][]sample, elapsed time.Duration, snap obs.Snapshot) *ingestReport {
	ir := &ingestReport{}
	for _, ws := range results {
		for _, s := range ws {
			if s.op == opIngest && s.err == nil && !s.overloaded {
				ir.Frames++
			}
		}
	}
	if elapsed > 0 {
		ir.ThroughputFPS = float64(ir.Frames) / elapsed.Seconds()
	}
	for _, m := range snap.Metrics {
		if m.Name != "goblaz_ingest_wal_fsync_seconds" {
			continue
		}
		for _, smp := range m.Samples {
			ir.WALFsyncCount += smp.Count
			if ms := smp.P99 * 1000; ms > ir.WALFsyncP99MS {
				ir.WALFsyncP99MS = ms
			}
		}
	}
	return ir
}

// summarize merges per-worker samples into the benchmark artifact.
func summarize(results [][]sample, target string, elapsed time.Duration, workers int, rps float64) *loadReport {
	r := &loadReport{
		Bench:     "loadtest",
		Target:    target,
		DurationS: elapsed.Seconds(),
		Workers:   workers,
		TargetRPS: rps,
		Mix:       map[string]int{},
	}
	var latencies []time.Duration
	for _, ws := range results {
		for _, s := range ws {
			r.Requests++
			r.Mix[opNames[s.op]]++
			latencies = append(latencies, s.latency)
			if s.overloaded {
				r.Overloaded++
			} else if s.err != nil {
				r.Errors++
			}
		}
	}
	if r.Requests > 0 {
		r.ErrorRate = float64(r.Errors) / float64(r.Requests)
		r.Throughput = float64(r.Requests) / elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	r.LatencyMS.P50 = ms(percentile(latencies, 0.50))
	r.LatencyMS.P95 = ms(percentile(latencies, 0.95))
	r.LatencyMS.P99 = ms(percentile(latencies, 0.99))
	if n := len(latencies); n > 0 {
		r.LatencyMS.Max = ms(latencies[n-1])
	}
	return r
}

// percentile reads the p-quantile from an ascending-sorted slice by
// nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
