package main

// The tune subcommand and the shared adaptive-assignment flags behind
// `goblaz pack -auto`: trial-encode every frame under a set of
// candidate codec specs, score ratio / max-error / encode-latency into
// a weighted fit (internal/tune), and either report the chosen
// per-frame assignment (tune) or pack with it directly into a
// mixed-codec v2 store (pack -auto).
//
//	goblaz tune -shape 64,64 [-candidates "SPEC;SPEC;..."] [-max-err F]
//	            [-report out.json] f0.f64 f1.f64 ...
//	goblaz pack -shape 64,64 -auto [-candidates ...] [-max-err F] out.gbz f0.f64 ...

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/codec"
	"repro/internal/tensor"
	"repro/internal/tune"
)

// tuneFlags are the adaptive-assignment knobs, registered on both the
// tune and pack flag sets so `pack -auto` accepts exactly what tune
// does.
type tuneFlags struct {
	auto       bool
	candidates string
	maxErr     float64
	wRatio     float64
	wErr       float64
	wLat       float64
	sample     int
	report     string
}

func (tf *tuneFlags) register(fs *flag.FlagSet, forPack bool) {
	if forPack {
		fs.BoolVar(&tf.auto, "auto", false, "pick each frame's codec adaptively by trial-encoding the candidate specs")
	}
	fs.StringVar(&tf.candidates, "candidates", "", `semicolon-separated candidate codec specs (default: the pack codec plus a built-in battery)`)
	fs.Float64Var(&tf.maxErr, "max-err", 0, "disqualify candidates whose L∞ reconstruction error exceeds this budget (0 = no budget)")
	fs.Float64Var(&tf.wRatio, "w-ratio", tune.DefaultWeights.Ratio, "scoring weight of the compression-ratio term")
	fs.Float64Var(&tf.wErr, "w-err", tune.DefaultWeights.Error, "scoring weight of the reconstruction-error term")
	fs.Float64Var(&tf.wLat, "w-lat", tune.DefaultWeights.Latency, "scoring weight of the encode-latency term")
	fs.IntVar(&tf.sample, "sample", 1, "trial every k-th frame; skipped frames inherit the last trialed winner")
	fs.StringVar(&tf.report, "report", "", "write the full JSON tune report to this path")
}

// candidateSpecs resolves -candidates, defaulting to the pack codec
// plus a small built-in battery; the default spec always leads and
// duplicates (by canonical form) collapse.
func (tf *tuneFlags) candidateSpecs(defaultSpec string) []string {
	raw := []string{defaultSpec}
	if tf.candidates != "" {
		for _, s := range strings.Split(tf.candidates, ";") {
			if s = strings.TrimSpace(s); s != "" {
				raw = append(raw, s)
			}
		}
	} else {
		raw = append(raw,
			"goblaz:block=8x8,float=float32,index=int16",
			"goblaz:block=8x8,float=float64,index=int16,keep=0.25",
			"zfp:rate=16",
		)
	}
	seen := map[string]bool{}
	var out []string
	for _, s := range raw {
		key := s
		if canon, err := codec.Canonical(s); err == nil {
			key = canon
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, s)
		}
	}
	return out
}

func (tf *tuneFlags) options(defaultSpec string) tune.Options {
	return tune.Options{
		Candidates:  tf.candidateSpecs(defaultSpec),
		MaxError:    tf.maxErr,
		Weights:     tune.Weights{Ratio: tf.wRatio, Error: tf.wErr, Latency: tf.wLat},
		SampleEvery: tf.sample,
	}
}

// runTuneReport runs the trial pass over the frame files and handles
// the -report output; both `goblaz tune` and `goblaz pack -auto` go
// through it.
func (tf *tuneFlags) run(o *options, frames []string) (*tune.Report, error) {
	labels := make([]int, len(frames))
	for i := range labels {
		labels[i] = i
	}
	coder, err := packCoder(o)
	if err != nil {
		return nil, err
	}
	rep, err := tune.Run(context.Background(), labels, func(i int) (*tensor.Tensor, error) {
		t, err := readTensor(frames[i], o.shape)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", frames[i], err)
		}
		return t, nil
	}, tf.options(coder.Spec()))
	if err != nil {
		return nil, err
	}
	if tf.report != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(tf.report, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// summarize prints the assignment one line per distinct spec, plus the
// assigned-vs-best-uniform comparison.
func summarizeTune(rep *tune.Report) {
	counts := map[string]int{}
	var order []string
	for _, f := range rep.Frames {
		if counts[f.Chosen] == 0 {
			order = append(order, f.Chosen)
		}
		counts[f.Chosen]++
	}
	for _, spec := range order {
		fmt.Printf("  %4d frame(s) → %s\n", counts[spec], spec)
	}
	if rep.BestUniform != "" {
		fmt.Printf("assigned %d bytes vs best uniform %d bytes (%s): %.1f%% saved\n",
			rep.AssignedBytes, rep.BestUniformBytes, rep.BestUniform, 100*rep.Savings)
	}
}

func runTune(args []string) error {
	var tf tuneFlags
	o, frames, err := parseOptions("tune", args, func(fs *flag.FlagSet) { tf.register(fs, false) })
	if err != nil {
		return err
	}
	if o.shape == nil || len(frames) == 0 {
		return fmt.Errorf("tune needs -shape and at least one frame file")
	}
	rep, err := tf.run(o, frames)
	if err != nil {
		return err
	}
	fmt.Printf("tuned %d frames over %d candidates:\n", len(rep.Frames), len(rep.Candidates))
	summarizeTune(rep)
	if tf.report != "" {
		fmt.Printf("report: %s\n", tf.report)
	}
	return nil
}
