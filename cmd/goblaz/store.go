package main

// The store subcommands: pack a series of raw frames into the seekable
// multi-frame container (internal/store), unpack frames back out,
// inspect the index, and serve frames over HTTP.
//
//	goblaz pack    -shape 64,64 -codec zfp:rate=16 [-workers 4] out.gbz f0.f64 f1.f64 ...
//	goblaz unpack  [-frame LABEL] out.gbz prefix        → prefix<label>.f64
//	goblaz inspect out.gbz
//	goblaz serve   -addr :8080 out.gbz

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/codec"
	"repro/internal/query"
	"repro/internal/series"
	"repro/internal/store"
)

// packCoder resolves the -codec spec, or the goblaz flag set when no
// spec was given, to a serializing codec. The flag path goes through the
// registry too — the store header must embed a spec that reconstructs
// the exact codec, and a registry spec (unlike codec.FromCompressor's
// approximate one) round-trips the keep= pruning fraction.
func packCoder(o *options) (codec.Coder, error) {
	spec := o.codecSpec
	if spec == "" {
		block := make([]string, len(o.block))
		for i, e := range o.block {
			block[i] = strconv.Itoa(e)
		}
		spec = fmt.Sprintf("goblaz:block=%s,float=%v,index=%v,transform=%v",
			strings.Join(block, "x"), o.floatT, o.indexT, o.transformK)
		if o.keep < 1 {
			spec += fmt.Sprintf(",keep=%g", o.keep)
		}
	}
	return lookupCoder(spec)
}

func runPack(args []string) error {
	o, paths, err := parseOptions("pack", args)
	if err != nil {
		return err
	}
	if o.shape == nil || len(paths) < 2 {
		return fmt.Errorf("pack needs -shape, an OUT path, and at least one frame file")
	}
	out, frames := paths[0], paths[1:]
	coder, err := packCoder(o)
	if err != nil {
		return err
	}
	// Build in a temp file and rename on success, so a mid-pack failure
	// neither leaves a truncated store nor clobbers an existing one.
	f, err := os.CreateTemp(filepath.Dir(out), ".goblaz-pack-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w, err := store.NewWriter(f, coder.Spec())
	if err != nil {
		return err
	}
	p := series.NewCodecPipeline(coder, w.Sink(coder), o.workers)
	for label, path := range frames {
		t, err := readTensor(path, o.shape)
		if err != nil {
			// Surface the bad input now; the pipeline still owns earlier
			// frames, so drain it — and report its failure too, if any.
			return errors.Join(fmt.Errorf("frame %d (%s): %w", label, path, err), p.Wait())
		}
		p.Submit(label, t)
	}
	if err := p.Wait(); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, out); err != nil {
		return err
	}
	tmp = ""
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	raw := int64(len(frames)) * int64(tensor8Bytes(o.shape))
	fmt.Printf("packed %d frames, %d → %d bytes with %s (ratio %.2f)\n",
		len(frames), raw, st.Size(), coder.Spec(), float64(raw)/float64(st.Size()))
	return nil
}

func tensor8Bytes(shape []int) int {
	n := 8
	for _, e := range shape {
		n *= e
	}
	return n
}

func runUnpack(args []string) error {
	fs := flag.NewFlagSet("unpack", flag.ExitOnError)
	frame := fs.Int("frame", -1, "unpack only the frame with this label")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("unpack needs IN and OUTPREFIX paths")
	}
	r, err := store.Open(rest[0])
	if err != nil {
		return err
	}
	defer r.Close()
	unpackOne := func(i int) error {
		info := r.Info(i)
		t, err := r.Decompress(i)
		if err != nil {
			return err
		}
		path := fmt.Sprintf("%s%d.f64", rest[1], info.Label)
		if err := writeTensor(path, t); err != nil {
			return err
		}
		fmt.Printf("frame %d (label %d) → %s %v\n", i, info.Label, path, t.Shape())
		return nil
	}
	if *frame >= 0 {
		i, ok := r.IndexOf(*frame)
		if !ok {
			return fmt.Errorf("no frame with label %d", *frame)
		}
		return unpackOne(i)
	}
	for i := 0; i < r.Len(); i++ {
		if err := unpackOne(i); err != nil {
			return err
		}
	}
	return nil
}

func runInspect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("inspect needs one path")
	}
	r, err := store.Open(args[0])
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Printf("codec:   %s\n", r.Spec())
	fmt.Printf("frames:  %d\n", r.Len())
	var total int64
	for _, e := range r.Frames() {
		total += e.Length
	}
	fmt.Printf("payload: %d bytes\n", total)
	if r.Len() > 0 {
		fmt.Printf("%8s %8s %12s %10s %10s\n", "frame", "label", "offset", "length", "crc32")
		for i, e := range r.Frames() {
			fmt.Printf("%8d %8d %12d %10d %10x\n", i, e.Label, e.Offset, e.Length, e.CRC32)
		}
	}
	return nil
}

// frameMeta is the JSON shape of one index entry served by /v1/frames.
type frameMeta struct {
	Index  int    `json:"index"`
	Label  int    `json:"label"`
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
	CRC32  string `json:"crc32"`
}

// newStoreHandler serves a store over HTTP:
//
//	GET  /healthz                   liveness
//	GET  /v1/store                  {"spec": ..., "frames": n}
//	GET  /v1/frames                 JSON index
//	GET  /v1/frames/{label}         decompressed frame, little-endian
//	                                float64 bytes; X-Goblaz-Shape header;
//	                                ETag from the frame's index CRC32
//	GET  /v1/frames/{label}/payload raw compressed payload (same ETag)
//	POST /v1/query                  compressed-domain query (internal/query
//	                                request JSON → result JSON)
//	GET  /v1/frames/{label}/stats   aggregate convenience route
//	                                (?aggs=mean,stddev,... — default all)
//	GET  /v1/frames/{label}/region  region convenience route
//	                                (?offset=3,5&shape=7,9)
//
// Frame and payload reads happen per request; query routes share eng's
// decoded-frame LRU across requests. The store reader, the engine, and
// the cache are all safe for concurrent use, so the handler needs no
// locking.
func newStoreHandler(r *store.Reader, eng *query.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/store", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, map[string]any{"spec": r.Spec(), "frames": r.Len()})
	})
	mux.HandleFunc("GET /v1/frames", func(w http.ResponseWriter, req *http.Request) {
		metas := make([]frameMeta, r.Len())
		for i, e := range r.Frames() {
			metas[i] = frameMeta{
				Index:  i,
				Label:  e.Label,
				Offset: e.Offset,
				Length: e.Length,
				CRC32:  fmt.Sprintf("%08x", e.CRC32),
			}
		}
		writeJSON(w, metas)
	})
	frameIndex := func(w http.ResponseWriter, req *http.Request) (int, bool) {
		label, err := strconv.Atoi(req.PathValue("label"))
		if err != nil {
			http.Error(w, "bad frame label", http.StatusBadRequest)
			return 0, false
		}
		i, ok := r.IndexOf(label)
		if !ok {
			http.Error(w, "no such frame", http.StatusNotFound)
			return 0, false
		}
		return i, true
	}
	mux.HandleFunc("GET /v1/frames/{label}", func(w http.ResponseWriter, req *http.Request) {
		i, ok := frameIndex(w, req)
		if !ok {
			return
		}
		if frameNotModified(w, req, r.Info(i)) {
			return
		}
		t, err := r.Decompress(i)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		shape := make([]string, len(t.Shape()))
		for d, e := range t.Shape() {
			shape[d] = strconv.Itoa(e)
		}
		raw := make([]byte, t.Len()*8)
		for j, v := range t.Data() {
			binary.LittleEndian.PutUint64(raw[j*8:], math.Float64bits(v))
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Goblaz-Shape", strings.Join(shape, ","))
		w.Write(raw)
	})
	mux.HandleFunc("GET /v1/frames/{label}/payload", func(w http.ResponseWriter, req *http.Request) {
		i, ok := frameIndex(w, req)
		if !ok {
			return
		}
		if frameNotModified(w, req, r.Info(i)) {
			return
		}
		payload, err := r.Payload(i)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(payload)
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, req *http.Request) {
		dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
		dec.DisallowUnknownFields()
		var qr query.Request
		if err := dec.Decode(&qr); err != nil {
			http.Error(w, "bad query JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		res, ok := runQueryRequest(w, eng, &qr)
		if ok {
			writeJSON(w, res)
		}
	})
	// frameQuery answers a convenience route scoped to one frame with
	// just that frame's result, keeping the 400/404 semantics of the
	// other /v1/frames/{label} routes. Selection uses the canonical
	// label of the resolved frame, not the raw path segment — "01"
	// resolves to the frame labeled 1 but would match no label as a
	// glob.
	frameQuery := func(w http.ResponseWriter, req *http.Request, qr *query.Request) {
		i, ok := frameIndex(w, req)
		if !ok {
			return
		}
		qr.Select = query.Selector{Labels: strconv.Itoa(r.Info(i).Label)}
		res, ok := runQueryRequest(w, eng, qr)
		if ok {
			writeJSON(w, res.Frames[0])
		}
	}
	mux.HandleFunc("GET /v1/frames/{label}/stats", func(w http.ResponseWriter, req *http.Request) {
		aggs := []string{
			query.AggMean, query.AggVariance, query.AggStdDev,
			query.AggMin, query.AggMax, query.AggL2Norm,
		}
		if v := req.FormValue("aggs"); v != "" {
			aggs = strings.Split(v, ",")
		}
		frameQuery(w, req, &query.Request{Aggregates: aggs})
	})
	mux.HandleFunc("GET /v1/frames/{label}/region", func(w http.ResponseWriter, req *http.Request) {
		offset, err := parseInts(req.FormValue("offset"))
		if err != nil {
			http.Error(w, "bad offset: "+err.Error(), http.StatusBadRequest)
			return
		}
		shape, err := parseInts(req.FormValue("shape"))
		if err != nil {
			http.Error(w, "bad shape: "+err.Error(), http.StatusBadRequest)
			return
		}
		frameQuery(w, req, &query.Request{Region: &query.RegionRequest{Offset: offset, Shape: shape}})
	})
	return mux
}

// runQueryRequest executes qr and maps failures onto status codes:
// validation errors are the client's (400), the rest the server's
// (500). ok reports whether a result is ready to encode.
func runQueryRequest(w http.ResponseWriter, eng *query.Engine, qr *query.Request) (*query.Result, bool) {
	res, err := eng.Run(qr)
	switch {
	case errors.Is(err, query.ErrBadRequest):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return nil, false
	}
	return res, true
}

// frameETag derives a frame's entity tag from the store footer's CRC32
// of its compressed payload — decompressed bytes and payload change
// exactly when the payload CRC does.
func frameETag(e store.FrameInfo) string {
	return fmt.Sprintf(`"%08x"`, e.CRC32)
}

// frameNotModified sets the frame's ETag and answers 304 when the
// request's If-None-Match matches it; true means the response is done.
func frameNotModified(w http.ResponseWriter, req *http.Request, e store.FrameInfo) bool {
	etag := frameETag(e)
	w.Header().Set("ETag", etag)
	for _, tag := range strings.Split(req.Header.Get("If-None-Match"), ",") {
		tag = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(tag), "W/"))
		if tag == etag || tag == "*" {
			w.WriteHeader(http.StatusNotModified)
			return true
		}
	}
	return false
}

// writeJSON encodes v to a buffer first, so an encoding failure (e.g. an
// infinite PSNR) becomes a clean 500 instead of a truncated 200 with an
// error appended after the body.
func writeJSON(w http.ResponseWriter, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(buf, '\n'))
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "decoded-frame LRU cache budget in bytes (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("serve needs one store path")
	}
	r, err := store.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer r.Close()
	eng := query.New(r, query.Options{CacheBytes: *cacheBytes})
	// Timeouts keep a slow or stalled client from pinning a connection
	// (and its decompression work) forever; WriteTimeout bounds the
	// largest frame we are willing to stream.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newStoreHandler(r, eng),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("serving %s (%d frames, codec %s) on %s\n", fs.Arg(0), r.Len(), r.Spec(), *addr)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop() // a second signal kills immediately
		fmt.Println("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-errCh // ListenAndServe has returned ErrServerClosed
		return nil
	}
}
