package main

// The store subcommands: pack a series of raw frames into the seekable
// multi-frame container (internal/store), unpack frames back out,
// inspect the index, and serve frames over HTTP.
//
//	goblaz pack    -shape 64,64 -codec zfp:rate=16 [-workers 4] out.gbz f0.f64 f1.f64 ...
//	goblaz unpack  [-frame LABEL] out.gbz prefix        → prefix<label>.f64
//	goblaz inspect out.gbz
//	goblaz serve   -addr :8080 out.gbz

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/codec"
	"repro/internal/series"
	"repro/internal/store"
)

// packCoder resolves the -codec spec, or the goblaz flag set when no
// spec was given, to a serializing codec. The flag path goes through the
// registry too — the store header must embed a spec that reconstructs
// the exact codec, and a registry spec (unlike codec.FromCompressor's
// approximate one) round-trips the keep= pruning fraction.
func packCoder(o *options) (codec.Coder, error) {
	spec := o.codecSpec
	if spec == "" {
		block := make([]string, len(o.block))
		for i, e := range o.block {
			block[i] = strconv.Itoa(e)
		}
		spec = fmt.Sprintf("goblaz:block=%s,float=%v,index=%v,transform=%v",
			strings.Join(block, "x"), o.floatT, o.indexT, o.transformK)
		if o.keep < 1 {
			spec += fmt.Sprintf(",keep=%g", o.keep)
		}
	}
	return lookupCoder(spec)
}

func runPack(args []string) error {
	o, paths, err := parseOptions("pack", args)
	if err != nil {
		return err
	}
	if o.shape == nil || len(paths) < 2 {
		return fmt.Errorf("pack needs -shape, an OUT path, and at least one frame file")
	}
	out, frames := paths[0], paths[1:]
	coder, err := packCoder(o)
	if err != nil {
		return err
	}
	// Build in a temp file and rename on success, so a mid-pack failure
	// neither leaves a truncated store nor clobbers an existing one.
	f, err := os.CreateTemp(filepath.Dir(out), ".goblaz-pack-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w, err := store.NewWriter(f, coder.Spec())
	if err != nil {
		return err
	}
	p := series.NewCodecPipeline(coder, w.Sink(coder), o.workers)
	for label, path := range frames {
		t, err := readTensor(path, o.shape)
		if err != nil {
			// Surface the bad input now; the pipeline still owns earlier
			// frames, so drain it — and report its failure too, if any.
			return errors.Join(fmt.Errorf("frame %d (%s): %w", label, path, err), p.Wait())
		}
		p.Submit(label, t)
	}
	if err := p.Wait(); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, out); err != nil {
		return err
	}
	tmp = ""
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	raw := int64(len(frames)) * int64(tensor8Bytes(o.shape))
	fmt.Printf("packed %d frames, %d → %d bytes with %s (ratio %.2f)\n",
		len(frames), raw, st.Size(), coder.Spec(), float64(raw)/float64(st.Size()))
	return nil
}

func tensor8Bytes(shape []int) int {
	n := 8
	for _, e := range shape {
		n *= e
	}
	return n
}

func runUnpack(args []string) error {
	fs := flag.NewFlagSet("unpack", flag.ExitOnError)
	frame := fs.Int("frame", -1, "unpack only the frame with this label")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("unpack needs IN and OUTPREFIX paths")
	}
	r, err := store.Open(rest[0])
	if err != nil {
		return err
	}
	defer r.Close()
	unpackOne := func(i int) error {
		info := r.Info(i)
		t, err := r.Decompress(i)
		if err != nil {
			return err
		}
		path := fmt.Sprintf("%s%d.f64", rest[1], info.Label)
		if err := writeTensor(path, t); err != nil {
			return err
		}
		fmt.Printf("frame %d (label %d) → %s %v\n", i, info.Label, path, t.Shape())
		return nil
	}
	if *frame >= 0 {
		i, ok := r.IndexOf(*frame)
		if !ok {
			return fmt.Errorf("no frame with label %d", *frame)
		}
		return unpackOne(i)
	}
	for i := 0; i < r.Len(); i++ {
		if err := unpackOne(i); err != nil {
			return err
		}
	}
	return nil
}

func runInspect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("inspect needs one path")
	}
	r, err := store.Open(args[0])
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Printf("codec:   %s\n", r.Spec())
	fmt.Printf("frames:  %d\n", r.Len())
	var total int64
	for _, e := range r.Frames() {
		total += e.Length
	}
	fmt.Printf("payload: %d bytes\n", total)
	if r.Len() > 0 {
		fmt.Printf("%8s %8s %12s %10s %10s\n", "frame", "label", "offset", "length", "crc32")
		for i, e := range r.Frames() {
			fmt.Printf("%8d %8d %12d %10d %10x\n", i, e.Label, e.Offset, e.Length, e.CRC32)
		}
	}
	return nil
}

// frameMeta is the JSON shape of one index entry served by /v1/frames.
type frameMeta struct {
	Index  int    `json:"index"`
	Label  int    `json:"label"`
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
	CRC32  string `json:"crc32"`
}

// newStoreHandler serves a store over HTTP:
//
//	GET /healthz                   liveness
//	GET /v1/store                  {"spec": ..., "frames": n}
//	GET /v1/frames                 JSON index
//	GET /v1/frames/{label}         decompressed frame, little-endian
//	                               float64 bytes; X-Goblaz-Shape header
//	GET /v1/frames/{label}/payload raw compressed payload
//
// Decompression happens per request and the store reader is safe for
// concurrent use, so the handler needs no locking.
func newStoreHandler(r *store.Reader) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/store", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, map[string]any{"spec": r.Spec(), "frames": r.Len()})
	})
	mux.HandleFunc("GET /v1/frames", func(w http.ResponseWriter, req *http.Request) {
		metas := make([]frameMeta, r.Len())
		for i, e := range r.Frames() {
			metas[i] = frameMeta{
				Index:  i,
				Label:  e.Label,
				Offset: e.Offset,
				Length: e.Length,
				CRC32:  fmt.Sprintf("%08x", e.CRC32),
			}
		}
		writeJSON(w, metas)
	})
	frameIndex := func(w http.ResponseWriter, req *http.Request) (int, bool) {
		label, err := strconv.Atoi(req.PathValue("label"))
		if err != nil {
			http.Error(w, "bad frame label", http.StatusBadRequest)
			return 0, false
		}
		i, ok := r.IndexOf(label)
		if !ok {
			http.Error(w, "no such frame", http.StatusNotFound)
			return 0, false
		}
		return i, true
	}
	mux.HandleFunc("GET /v1/frames/{label}", func(w http.ResponseWriter, req *http.Request) {
		i, ok := frameIndex(w, req)
		if !ok {
			return
		}
		t, err := r.Decompress(i)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		shape := make([]string, len(t.Shape()))
		for d, e := range t.Shape() {
			shape[d] = strconv.Itoa(e)
		}
		raw := make([]byte, t.Len()*8)
		for j, v := range t.Data() {
			binary.LittleEndian.PutUint64(raw[j*8:], math.Float64bits(v))
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Goblaz-Shape", strings.Join(shape, ","))
		w.Write(raw)
	})
	mux.HandleFunc("GET /v1/frames/{label}/payload", func(w http.ResponseWriter, req *http.Request) {
		i, ok := frameIndex(w, req)
		if !ok {
			return
		}
		payload, err := r.Payload(i)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(payload)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("serve needs one store path")
	}
	r, err := store.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer r.Close()
	fmt.Printf("serving %s (%d frames, codec %s) on %s\n", fs.Arg(0), r.Len(), r.Spec(), *addr)
	return http.ListenAndServe(*addr, newStoreHandler(r))
}
