package main

// The store subcommands: pack a series of raw frames into the seekable
// multi-frame container (internal/store) — or, with -shards, into a
// sharded dataset — unpack frames back out, inspect the index, and
// serve stores and datasets over the v1 HTTP API.
//
//	goblaz pack    -shape 64,64 -codec zfp:rate=16 [-workers 4] out.gbz f0.f64 f1.f64 ...
//	goblaz pack    -shape 64,64 -shards 4 out.json f0.f64 f1.f64 ...
//	goblaz unpack  [-frame LABEL] out.gbz prefix        → prefix<label>.f64
//	goblaz inspect out.gbz              (or a manifest, a topology, or an http:// URL)
//	goblaz serve   -addr :8080 out.gbz [name=other.gbz ...] [runs=out.json ...]
//	goblaz serve   -addr :8080 -topology cluster.json
//
// inspect accepts a store path, a dataset manifest, a cluster
// topology, or a serving URL interchangeably — all resolve to an
// api.Backend (see backend.go). serve mounts its first argument on the
// default /v1 routes and every argument (named by `name=path`, or the
// file's base name) under /v1/stores/{name}/ or — for manifests and
// topologies — /v1/datasets/{name}/; -topology adds a cluster
// coordinator mount, turning this process into the query tier in front
// of remote shard servers.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/api/httpapi"
	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/series"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/tensor"
)

// packCoder resolves the -codec spec, or the goblaz flag set when no
// spec was given, to a serializing codec. The flag path goes through the
// registry too — the store header must embed a spec that reconstructs
// the exact codec, and a registry spec (unlike codec.FromCompressor's
// approximate one) round-trips the keep= pruning fraction.
func packCoder(o *options) (codec.Coder, error) {
	spec := o.codecSpec
	if spec == "" {
		block := make([]string, len(o.block))
		for i, e := range o.block {
			block[i] = strconv.Itoa(e)
		}
		spec = fmt.Sprintf("goblaz:block=%s,float=%v,index=%v,transform=%v",
			strings.Join(block, "x"), o.floatT, o.indexT, o.transformK)
		if o.keep < 1 {
			spec += fmt.Sprintf(",keep=%g", o.keep)
		}
	}
	return lookupCoder(spec)
}

func runPack(args []string) error {
	var tf tuneFlags
	o, paths, err := parseOptions("pack", args, func(fs *flag.FlagSet) { tf.register(fs, true) })
	if err != nil {
		return err
	}
	if o.shape == nil || len(paths) < 2 {
		return fmt.Errorf("pack needs -shape, an OUT path, and at least one frame file")
	}
	out, frames := paths[0], paths[1:]
	coder, err := packCoder(o)
	if err != nil {
		return err
	}
	// -auto runs the tune trial pass first and packs each frame under its
	// chosen codec (mixed-codec v2 store); the -codec/-block flags still
	// set the default spec and lead the candidate list.
	var assign shard.AssignFunc
	if tf.auto {
		rep, err := tf.run(o, frames)
		if err != nil {
			return err
		}
		fmt.Printf("auto-assigned codecs over %d candidates:\n", len(rep.Candidates))
		summarizeTune(rep)
		fn, err := rep.Coders(coder.Spec())
		if err != nil {
			return err
		}
		assign = fn
	}
	// -shards 1 is a valid (single-shard) dataset: the flag decides the
	// output format, manifest vs bare store, not just the split.
	if o.shards > 0 {
		return packSharded(o, coder, assign, out, frames)
	}
	// Build in a temp file and rename on success, so a mid-pack failure
	// neither leaves a truncated store nor clobbers an existing one.
	f, err := os.CreateTemp(filepath.Dir(out), ".goblaz-pack-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w, err := store.NewWriter(f, coder.Spec())
	if err != nil {
		return err
	}
	var p *series.Pipeline
	if assign == nil {
		p = series.NewCodecPipeline(coder, w.Sink(coder), o.workers)
	} else {
		p = series.NewAssignedPipeline(assign, w.SinkAssigned(), o.workers)
	}
	for label, path := range frames {
		t, err := readTensor(path, o.shape)
		if err != nil {
			// Surface the bad input now; the pipeline still owns earlier
			// frames, so drain it — and report its failure too, if any.
			return errors.Join(fmt.Errorf("frame %d (%s): %w", label, path, err), p.Wait())
		}
		p.Submit(label, t)
	}
	if err := p.Wait(); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, out); err != nil {
		return err
	}
	tmp = ""
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	raw := int64(len(frames)) * int64(tensor8Bytes(o.shape))
	spec := coder.Spec()
	if assign != nil {
		spec = "per-frame codecs (default " + spec + ")"
	}
	fmt.Printf("packed %d frames, %d → %d bytes with %s (ratio %.2f)\n",
		len(frames), raw, st.Size(), spec, float64(raw)/float64(st.Size()))
	return nil
}

// packSharded writes a sharded dataset: OUT is the manifest path, the
// shard stores land next to it (see shard.WriteDataset). Frame labels
// are global positions, exactly like single-store pack. A non-nil
// assign (pack -auto) compresses each frame under its assigned codec.
func packSharded(o *options, coder codec.Coder, assign shard.AssignFunc, out string, frames []string) error {
	labels := make([]int, len(frames))
	for i := range labels {
		labels[i] = i
	}
	frame := func(i int) (*tensor.Tensor, error) {
		t, err := readTensor(frames[i], o.shape)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", frames[i], err)
		}
		return t, nil
	}
	var man *shard.Manifest
	var err error
	if assign == nil {
		man, err = shard.WriteDataset(out, coder, labels, o.shards, o.workers, frame)
	} else {
		man, err = shard.WriteDatasetAssigned(out, coder, assign, labels, o.shards, o.workers, frame)
	}
	if err != nil {
		return err
	}
	var packed int64
	for _, sh := range man.Shards {
		st, err := os.Stat(filepath.Join(filepath.Dir(out), sh.Path))
		if err != nil {
			return err
		}
		packed += st.Size()
	}
	raw := int64(len(frames)) * int64(tensor8Bytes(o.shape))
	fmt.Printf("packed %d frames into %d shards, %d → %d bytes with %s (ratio %.2f)\n",
		len(frames), len(man.Shards), raw, packed, coder.Spec(), float64(raw)/float64(packed))
	return nil
}

func tensor8Bytes(shape []int) int {
	n := 8
	for _, e := range shape {
		n *= e
	}
	return n
}

func runUnpack(args []string) error {
	fs := flag.NewFlagSet("unpack", flag.ExitOnError)
	frame := fs.Int("frame", -1, "unpack only the frame with this label")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("unpack needs IN and OUTPREFIX paths")
	}
	r, err := store.Open(rest[0])
	if err != nil {
		return err
	}
	defer r.Close()
	unpackOne := func(i int) error {
		info := r.Info(i)
		t, err := r.Decompress(i)
		if err != nil {
			return err
		}
		path := fmt.Sprintf("%s%d.f64", rest[1], info.Label)
		if err := writeTensor(path, t); err != nil {
			return err
		}
		fmt.Printf("frame %d (label %d) → %s %v\n", i, info.Label, path, t.Shape())
		return nil
	}
	if *frame >= 0 {
		i, ok := r.IndexOf(*frame)
		if !ok {
			return fmt.Errorf("no frame with label %d", *frame)
		}
		return unpackOne(i)
	}
	for i := 0; i < r.Len(); i++ {
		if err := unpackOne(i); err != nil {
			return err
		}
	}
	return nil
}

// runInspect prints a store's codec, frame count, and index. The
// argument may be a local path or a serving URL — both resolve through
// the v1 Backend contract.
func runInspect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("inspect needs one store path or URL")
	}
	b, closeB, err := openBackend(args[0], query.Options{}, 30*time.Second)
	if err != nil {
		return err
	}
	defer closeB()
	ctx := context.Background()
	info, err := b.Spec(ctx)
	if err != nil {
		return err
	}
	frames, err := b.Frames(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("codec:   %s\n", info.Spec)
	if len(info.Specs) > 1 {
		fmt.Printf("specs:   %s\n", strings.Join(info.Specs, ", "))
	}
	fmt.Printf("frames:  %d\n", info.Frames)
	var total int64
	for _, e := range frames {
		total += e.Length
	}
	fmt.Printf("payload: %d bytes\n", total)
	if len(frames) > 0 {
		// Mixed-codec stores get a spec column; "·" marks the default.
		mixed := len(info.Specs) > 1
		if mixed {
			fmt.Printf("%8s %8s %12s %10s %10s  %s\n", "frame", "label", "offset", "length", "crc32", "spec")
		} else {
			fmt.Printf("%8s %8s %12s %10s %10s\n", "frame", "label", "offset", "length", "crc32")
		}
		for _, e := range frames {
			if mixed {
				spec := e.Spec
				if spec == "" {
					spec = "·"
				}
				fmt.Printf("%8d %8d %12d %10d %10s  %s\n", e.Index, e.Label, e.Offset, e.Length, e.CRC32, spec)
			} else {
				fmt.Printf("%8d %8d %12d %10d %10s\n", e.Index, e.Label, e.Offset, e.Length, e.CRC32)
			}
		}
	}
	return nil
}

// mountName derives a store's mount name under /v1/stores/ from its
// argument: an explicit NAME=PATH, or the file's base name without
// extension. explicit reports whether the name was caller-chosen.
func mountName(arg string) (name, path string, explicit bool) {
	if name, path, ok := strings.Cut(arg, "="); ok && !isServiceURL(arg) && name != "" {
		return name, path, true
	}
	base := filepath.Base(arg)
	return strings.TrimSuffix(base, filepath.Ext(base)), arg, false
}

// openMounts opens every [name=]path argument — a store file as a
// Local backend, a dataset manifest as a Sharded one, a cluster
// topology as a remote Coordinator — and names its mount. The first
// argument doubles as the default (unprefixed) /v1 mount, preserving
// the single-store API.
func openMounts(args []string, cacheBytes int64) (def api.Backend, stores, datasets map[string]api.Backend, closeAll func(), err error) {
	stores = map[string]api.Backend{}
	datasets = map[string]api.Backend{}
	var opened []io.Closer
	closeAll = func() {
		for _, c := range opened {
			c.Close()
		}
	}
	for _, arg := range args {
		name, path, explicit := mountName(arg)
		// A topology mount prefers the dataset name the file declares —
		// "serve -topology cluster.json" mounts /v1/datasets/{dataset} —
		// unless the argument named it explicitly.
		if !explicit && cluster.IsTopology(path) {
			if t, err := cluster.LoadTopology(path); err == nil && t.Dataset != "" {
				name = t.Dataset
			}
		}
		if _, dup := stores[name]; dup {
			closeAll()
			return nil, nil, nil, nil, fmt.Errorf("duplicate store mount %q (disambiguate with name=path)", name)
		}
		if _, dup := datasets[name]; dup {
			closeAll()
			return nil, nil, nil, nil, fmt.Errorf("duplicate dataset mount %q (disambiguate with name=path)", name)
		}
		var b api.Backend
		mount := "/v1/stores/"
		if cluster.IsTopology(path) {
			co, err := cluster.Open(path, cluster.Options{})
			if err != nil {
				closeAll()
				return nil, nil, nil, nil, fmt.Errorf("topology %s: %w", path, err)
			}
			opened = append(opened, co)
			datasets[name] = co
			b, mount = co, "/v1/datasets/"
		} else if shard.IsManifest(path) {
			s, err := api.OpenSharded(path, query.Options{CacheBytes: cacheBytes})
			if err != nil {
				closeAll()
				return nil, nil, nil, nil, fmt.Errorf("dataset %s: %w", path, err)
			}
			opened = append(opened, s)
			datasets[name] = s
			b, mount = s, "/v1/datasets/"
		} else {
			l, err := api.OpenLocal(path, query.Options{CacheBytes: cacheBytes})
			if err != nil {
				closeAll()
				return nil, nil, nil, nil, fmt.Errorf("store %s: %w", path, err)
			}
			opened = append(opened, l)
			stores[name] = l
			b = l
		}
		if def == nil {
			def = b
		}
		info, _ := b.Spec(context.Background())
		if info.Shards > 0 {
			fmt.Printf("mounted %s at %s%s (%d frames, %d shards, codec %s)\n",
				path, mount, name, info.Frames, info.Shards, info.Spec)
		} else {
			fmt.Printf("mounted %s at %s%s (%d frames, codec %s)\n", path, mount, name, info.Frames, info.Spec)
		}
	}
	return def, stores, datasets, closeAll, nil
}

// limitMounts wraps every mount in admission control and returns the
// wrapped default. The default mount aliases one of the named entries
// (openMounts reuses the first backend), so wrapping goes through an
// identity map — both routes must share one limiter, not get one each.
func limitMounts(def api.Backend, stores, datasets map[string]api.Backend, opts api.LimitOptions) api.Backend {
	if opts.MaxConcurrent <= 0 {
		return def
	}
	wrapped := map[api.Backend]api.Backend{}
	lim := func(b api.Backend) api.Backend {
		if b == nil {
			return nil
		}
		if w, ok := wrapped[b]; ok {
			return w
		}
		w := api.Limit(b, opts)
		wrapped[b] = w
		return w
	}
	for name, b := range stores {
		stores[name] = lim(b)
	}
	for name, b := range datasets {
		datasets[name] = lim(b)
	}
	return lim(def)
}

// debugServer exposes net/http/pprof — plus the metrics endpoints, so
// an operator can scrape without opening them on the public listener —
// on its own mux and address. Profiling data (and the DefaultServeMux
// side effects of importing net/http/pprof) stay on an operator-chosen,
// typically loopback, port.
func debugServer(addr string, logf func(string, ...any)) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	mux.Handle("/metrics", httpapi.MetricsProm(obs.Default))
	mux.Handle("/v1/debug/metrics", httpapi.MetricsJSON(obs.Default))
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logf("debug server: %v", err)
		}
	}()
	return srv
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "decoded-frame LRU cache budget in bytes, per store (0 disables)")
	timeout := fs.Duration("timeout", 55*time.Second, "per-request deadline; canceled work stops the query engine (0 disables)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (empty disables; keep it off public interfaces)")
	maxConcurrent := fs.Int("max-concurrent", 0, "per-mount concurrent decode/query limit (0 disables admission control)")
	maxQueue := fs.Int("max-queue", 0, "requests allowed to wait for a slot once -max-concurrent are busy")
	queueWait := fs.Duration("queue-wait", api.DefaultQueueWait, "how long a queued request waits before being shed with 429")
	metrics := fs.Bool("metrics", false, "expose Prometheus text exposition at GET /metrics on the main listener (always on -debug-addr)")
	logJSON := fs.Bool("log-json", false, "emit the access log as JSON lines instead of key=value")
	slowQuery := fs.Duration("slow-query", 0, "log spans (queries, decodes, scatters) slower than this threshold (0 disables)")
	topology := fs.String("topology", "", "mount a cluster topology's coordinator beside any store arguments (see internal/cluster)")
	ingestMount := fs.String("ingest", "", "mount an appendable store ([name=]path) accepting POST .../frames; created if missing (needs -ingest-spec)")
	ingestSpec := fs.String("ingest-spec", "", "codec spec for a newly created -ingest store")
	commitEvery := fs.Int("commit-every", 64, "-ingest: commit after this many pending frames (0 disables the count trigger)")
	commitBytes := fs.Int64("commit-bytes", 0, "-ingest: commit after this many pending payload bytes (0 disables)")
	commitInterval := fs.Duration("commit-interval", 5*time.Second, "-ingest: commit pending frames at least this often (0 disables)")
	compactBytes := fs.Int64("compact-bytes", 4<<20, "-ingest: rewrite the store once superseded footers exceed this many dead bytes (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mounts := fs.Args()
	if *topology != "" {
		mounts = append(mounts, *topology)
	}
	if len(mounts) < 1 && *ingestMount == "" {
		return fmt.Errorf("serve needs at least one store path ([name=]path ...), -topology, or -ingest")
	}

	def, stores, datasets, closeAll, err := openMounts(mounts, *cacheBytes)
	if err != nil {
		return err
	}
	defer closeAll()
	if *ingestMount != "" {
		name, path, _ := mountName(*ingestMount)
		if _, dup := datasets[name]; dup {
			return fmt.Errorf("duplicate dataset mount %q (disambiguate with name=path)", name)
		}
		iopts := ingest.Options{
			Spec: *ingestSpec, CommitFrames: *commitEvery, CommitBytes: *commitBytes,
			CommitInterval: *commitInterval, CompactBytes: *compactBytes, CacheBytes: *cacheBytes,
		}
		var is *ingest.Store
		if _, serr := os.Stat(path); errors.Is(serr, os.ErrNotExist) {
			if *ingestSpec == "" {
				return fmt.Errorf("-ingest: creating %s needs -ingest-spec", path)
			}
			is, err = ingest.Create(path, iopts)
		} else {
			is, err = ingest.Open(path, iopts)
		}
		if err != nil {
			return fmt.Errorf("ingest store %s: %w", path, err)
		}
		defer is.Close()
		datasets[name] = is
		if def == nil {
			def = is
		}
		info, _ := is.Spec(context.Background())
		fmt.Printf("mounted %s at /v1/datasets/%s (ingest, %d frames, codec %s)\n", path, name, info.Frames, info.Spec)
	}
	def = limitMounts(def, stores, datasets, api.LimitOptions{
		MaxConcurrent: *maxConcurrent, MaxQueue: *maxQueue, QueueWait: *queueWait,
	})

	logger := log.New(os.Stderr, "", log.LstdFlags)
	obs.DefaultTracer.Configure(*slowQuery, logger.Printf)
	if *debugAddr != "" {
		dbg := debugServer(*debugAddr, logger.Printf)
		defer dbg.Close()
		fmt.Printf("pprof+metrics debug server on %s\n", *debugAddr)
	}
	// Readiness flips on once the mounts are open and the listener is
	// up, and off again the moment shutdown begins — so cluster health
	// probes (GET /readyz) never route traffic to a warming or draining
	// process. Liveness (/healthz) stays unconditional.
	var ready atomic.Bool
	handler := httpapi.New(def, stores, httpapi.Options{
		RequestTimeout: *timeout,
		Logf:           logger.Printf,
		Datasets:       datasets,
		ExposeMetrics:  *metrics,
		LogJSON:        *logJSON,
		Ready:          ready.Load,
	})
	// Server-level timeouts keep a slow or stalled client from pinning a
	// connection (and its decompression work) forever; WriteTimeout
	// bounds the largest frame we are willing to stream and must outlast
	// the per-request deadline so timeouts answer as envelopes, not
	// resets — hence it is derived from -timeout when that is longer,
	// and disabled entirely when -timeout 0 asks for unbounded requests.
	writeTimeout := 60 * time.Second
	switch {
	case *timeout <= 0:
		writeTimeout = 0
	case *timeout+5*time.Second > writeTimeout:
		writeTimeout = *timeout + 5*time.Second
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Listen explicitly (rather than ListenAndServe) so ":0" works for
	// multi-process tests and scripts: the bound address is printed,
	// not the requested one.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	ready.Store(true)
	fmt.Printf("serving %d store(s) and %d dataset(s) on %s\n", len(stores), len(datasets), ln.Addr())
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop() // a second signal kills immediately
		ready.Store(false)
		fmt.Println("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-errCh // Serve has returned ErrServerClosed
		return nil
	}
}
