package main

// Distributed-tier end-to-end checks: a cluster topology over real
// shard servers must be interchangeable with the manifest on disk —
// as a `goblaz query` argument, as a `goblaz serve -topology` mount,
// and as a loadtest target. The final test does it with real
// processes: two `goblaz serve` shard children plus a coordinator
// child, spawned by re-executing this test binary, gated on /readyz.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/shard"
)

// clusterTopologyFile serves every shard of the manifest from its own
// in-process server (one replica each) and writes a topology over them.
func clusterTopologyFile(t *testing.T, manifest, dataset string) string {
	t.Helper()
	man, err := shard.LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Dir(manifest)
	topo := &cluster.Topology{Version: cluster.TopologyVersion, Dataset: dataset}
	for i, sh := range man.Shards {
		url := startServe(t, filepath.Join(dir, sh.Path))
		topo.Shards = append(topo.Shards, cluster.ShardSpec{
			Name:     fmt.Sprintf("s%d", i),
			Replicas: []string{url},
		})
	}
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := topo.Write(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestClusterTopologyBackendMatchesManifest(t *testing.T) {
	// `goblaz query` on a topology file answers byte-identically to the
	// same query on the manifest: the coordinator folds the same
	// per-shard moment partials in the same global order, and JSON
	// round-trips float64 exactly. (No -metric here: cross-shard metrics
	// run decode-fallback on the coordinator, which is tolerance-equal,
	// not byte-equal — the internal/cluster differential covers those.)
	manifest, _ := packShardedDataset(t, 6, 2)
	topoPath := clusterTopologyFile(t, manifest, "runs")

	args := []string{
		"-aggs", "mean,variance,stddev,min,max,l2norm",
		"-reduce", "mean,variance,min,max",
		"-region", "1,1:3,3", "-point", "2,2",
	}
	viaTopo, err := captureStdout(t, func() error { return runQuery(append(args, topoPath)) })
	if err != nil {
		t.Fatalf("query topology: %v", err)
	}
	viaManifest, err := captureStdout(t, func() error { return runQuery(append(args, manifest)) })
	if err != nil {
		t.Fatalf("query manifest: %v", err)
	}
	if len(viaTopo) == 0 {
		t.Fatal("empty query output")
	}
	if !bytes.Equal(viaTopo, viaManifest) {
		t.Errorf("topology and manifest results differ:\n--- topology ---\n%s\n--- manifest ---\n%s", viaTopo, viaManifest)
	}

	// inspect resolves a topology like any other store argument and sees
	// the dataset's full frame inventory through the coordinator.
	out, err := captureStdout(t, func() error { return runInspect([]string{topoPath}) })
	if err != nil {
		t.Fatalf("inspect topology: %v", err)
	}
	if !bytes.Contains(out, []byte("frames:  6")) {
		t.Errorf("inspect output does not report 6 frames:\n%s", out)
	}
}

func TestClusterServeTopology(t *testing.T) {
	// `goblaz serve -topology` mounts the coordinator as a dataset; the
	// default mount and /v1/datasets/{name} both answer identically to
	// the manifest on disk — a coordinator behind a server behind the
	// SDK is still the same dataset.
	manifest, _ := packShardedDataset(t, 6, 2)
	topoPath := clusterTopologyFile(t, manifest, "runs")
	url := startServe(t, topoPath)

	args := []string{"-aggs", "mean,min", "-reduce", "mean,l2norm"}
	viaManifest, err := captureStdout(t, func() error { return runQuery(append(args, manifest)) })
	if err != nil {
		t.Fatalf("query manifest: %v", err)
	}
	for _, target := range []string{url, url + "/v1/datasets/runs"} {
		viaURL, err := captureStdout(t, func() error { return runQuery(append(args, target)) })
		if err != nil {
			t.Fatalf("query %s: %v", target, err)
		}
		if !bytes.Equal(viaURL, viaManifest) {
			t.Errorf("%s and manifest results differ:\n--- url ---\n%s\n--- manifest ---\n%s", target, viaURL, viaManifest)
		}
	}
}

func TestLoadtestClusterTopology(t *testing.T) {
	// The loadtest generator pointed at a topology drives the whole
	// distributed hot path — coordinator scatter, per-shard SDK
	// transports, merge — and must finish a short run with zero errors.
	// GOBLAZ_BENCH_OUT lets CI keep the artifact (BENCH_9.json).
	manifest, _ := packShardedDataset(t, 6, 2)
	topoPath := clusterTopologyFile(t, manifest, "runs")
	out := filepath.Join(t.TempDir(), "bench.json")
	if p := os.Getenv("GOBLAZ_BENCH_OUT"); p != "" {
		out = p
	}
	if _, err := captureStdout(t, func() error {
		return runLoadtest([]string{
			"-duration", "300ms", "-workers", "2",
			"-mix", "query=1,frame=1,region=1",
			"-out", out, topoPath,
		})
	}); err != nil {
		t.Fatalf("loadtest over topology: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, blob)
	}
	if rep.Bench != "loadtest" || rep.Requests <= 0 || rep.Workers != 2 {
		t.Errorf("artifact looks wrong: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Errorf("cluster loadtest had %d errors", rep.Errors)
	}
	if rep.LatencyMS.P50 <= 0 || rep.LatencyMS.P99 < rep.LatencyMS.P50 {
		t.Errorf("percentiles not ordered: %+v", rep.LatencyMS)
	}
}

// TestHelperServeProcess is not a test: it is the re-exec target for
// the multi-process e2e below. The parent runs this binary with
// -test.run pinned here and GOBLAZ_HELPER_SERVE=1; everything after
// "--" is a `goblaz serve` argument list.
func TestHelperServeProcess(t *testing.T) {
	if os.Getenv("GOBLAZ_HELPER_SERVE") != "1" {
		t.Skip("re-exec helper, not a test")
	}
	sep := -1
	for i, a := range os.Args {
		if a == "--" {
			sep = i + 1
			break
		}
	}
	if sep < 0 {
		t.Fatal("helper invoked without a -- argument separator")
	}
	if err := runServe(os.Args[sep:]); err != nil {
		t.Fatal(err)
	}
}

// spawnServe re-executes the test binary as a real `goblaz serve`
// process, waits for it to print its bound address and for /readyz to
// go 200, and returns the base URL.
func spawnServe(t *testing.T, args ...string) string {
	t.Helper()
	argv := append([]string{"-test.run=^TestHelperServeProcess$", "--", "-addr", "127.0.0.1:0"}, args...)
	cmd := exec.Command(os.Args[0], argv...)
	cmd.Env = append(os.Environ(), "GOBLAZ_HELPER_SERVE=1")
	cmd.Stderr = io.Discard
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// runServe prints "serving ... on 127.0.0.1:PORT" after flipping
	// readiness; everything before it is mount lines.
	addrRe := regexp.MustCompile(` on (127\.0\.0\.1:\d+)$`)
	url := ""
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		if m := addrRe.FindStringSubmatch(scanner.Text()); m != nil {
			url = "http://" + m[1]
			break
		}
	}
	if url == "" {
		t.Fatalf("serve child never printed its address (scan error: %v)", scanner.Err())
	}
	// Keep draining so the child never blocks on a full pipe.
	go io.Copy(io.Discard, stdout)

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return url
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became ready: %v", url, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestClusterMultiProcessE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	// Two real shard server processes, one real coordinator process
	// serving the topology with /metrics on, queried by the real CLI —
	// and the answer must be byte-identical to the manifest on disk.
	manifest, _ := packShardedDataset(t, 6, 2)
	man, err := shard.LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Dir(manifest)
	topo := &cluster.Topology{Version: cluster.TopologyVersion, Dataset: "runs"}
	for i, sh := range man.Shards {
		url := spawnServe(t, filepath.Join(dir, sh.Path))
		topo.Shards = append(topo.Shards, cluster.ShardSpec{
			Name:     fmt.Sprintf("s%d", i),
			Replicas: []string{url},
		})
	}
	topoPath := filepath.Join(t.TempDir(), "cluster.json")
	if err := topo.Write(topoPath); err != nil {
		t.Fatal(err)
	}
	coordURL := spawnServe(t, "-metrics", "-topology", topoPath)

	args := []string{"-aggs", "mean,min,max", "-reduce", "mean,l2norm"}
	viaManifest, err := captureStdout(t, func() error { return runQuery(append(args, manifest)) })
	if err != nil {
		t.Fatalf("query manifest: %v", err)
	}
	for _, target := range []string{coordURL, coordURL + "/v1/datasets/runs"} {
		viaCoord, err := captureStdout(t, func() error { return runQuery(append(args, target)) })
		if err != nil {
			t.Fatalf("query %s: %v", target, err)
		}
		if !bytes.Equal(viaCoord, viaManifest) {
			t.Errorf("%s and manifest results differ:\n--- coordinator ---\n%s\n--- manifest ---\n%s", target, viaCoord, viaManifest)
		}
	}

	// The coordinator's /metrics shows distributed-tier activity: the
	// scatter counters moved and every shard endpoint reads healthy.
	resp, err := http.Get(coordURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s (%v)", resp.Status, err)
	}
	for family, re := range map[string]*regexp.Regexp{
		"goblaz_cluster_queries_total": regexp.MustCompile(`(?m)^goblaz_cluster_queries_total (\d+)$`),
		"goblaz_cluster_parts_total":   regexp.MustCompile(`(?m)^goblaz_cluster_parts_total (\d+)$`),
	} {
		m := re.FindSubmatch(body)
		if m == nil {
			t.Errorf("family %s missing from coordinator exposition:\n%s", family, body)
			continue
		}
		if v, _ := strconv.Atoi(string(m[1])); v <= 0 {
			t.Errorf("family %s did not move: %s", family, m[0])
		}
	}
	up := regexp.MustCompile(`(?m)^goblaz_cluster_endpoint_up\{[^}]*\} 1$`).FindAll(body, -1)
	if len(up) != len(topo.Shards) {
		t.Errorf("%d endpoints report up, want %d; exposition:\n%s", len(up), len(topo.Shards), body)
	}
}
