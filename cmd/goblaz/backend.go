package main

// The CLI's bridge to the v1 service layer: a store argument is a
// local store file, a sharded-dataset manifest, a cluster topology, or
// an http(s):// URL, resolved to the matching api.Backend — Local over
// an opened store file, Sharded over a dataset manifest, a cluster
// Coordinator over a topology file, the HTTP Client SDK otherwise.
// Subcommands written against api.Backend (query, inspect, loadtest)
// work identically on all four.

import (
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/query"
	"repro/internal/shard"
)

// isServiceURL reports whether a store argument names a serving URL
// rather than a local path.
func isServiceURL(arg string) bool {
	return strings.HasPrefix(arg, "http://") || strings.HasPrefix(arg, "https://")
}

// openBackend resolves arg to a Backend. close releases whatever the
// backend holds (the store or shard file handles; nothing for the HTTP
// client).
func openBackend(arg string, opts query.Options, timeout time.Duration) (b api.Backend, close func() error, err error) {
	if isServiceURL(arg) {
		c, err := api.NewClient(arg, api.ClientOptions{Timeout: timeout})
		if err != nil {
			return nil, nil, err
		}
		return c, func() error { return nil }, nil
	}
	if cluster.IsTopology(arg) {
		co, err := cluster.Open(arg, cluster.Options{ClientTimeout: timeout})
		if err != nil {
			return nil, nil, err
		}
		return co, co.Close, nil
	}
	if shard.IsManifest(arg) {
		s, err := api.OpenSharded(arg, opts)
		if err != nil {
			return nil, nil, err
		}
		return s, s.Close, nil
	}
	l, err := api.OpenLocal(arg, opts)
	if err != nil {
		return nil, nil, err
	}
	return l, l.Close, nil
}
