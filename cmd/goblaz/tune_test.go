package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/tune"
)

const tuneCandidates = "goblaz:block=8x8,float=float64,index=int16;zfp:rate=16"

// tuneInputs writes frames that alternate between a smooth ramp (zfp
// encodes it exactly, and small) and a rough field (zfp blows a 1e-3
// error budget there, goblaz does not), so -auto with that budget must
// produce a genuinely mixed assignment.
func tuneInputs(t *testing.T, dir string, n int) []string {
	t.Helper()
	paths := make([]string, n)
	for k := 0; k < n; k++ {
		data := make([]float64, 16*16)
		for j := range data {
			x, y := float64(j%16), float64(j/16)
			if k%2 == 0 {
				data[j] = x/16 + y/16
			} else {
				data[j] = math.Sin(x*3.7+float64(k)) * math.Cos(y*2.9) * float64(1+j%5)
			}
		}
		paths[k] = filepath.Join(dir, "f"+string(rune('0'+k))+".f64")
		writeRaw(t, paths[k], data)
	}
	return paths
}

func TestTuneCLIWritesReport(t *testing.T) {
	dir := t.TempDir()
	inputs := tuneInputs(t, dir, 4)
	report := filepath.Join(dir, "tune.json")

	args := []string{"-shape", "16,16", "-candidates", tuneCandidates,
		"-max-err", "1e-3", "-report", report}
	if err := runTune(append(args, inputs...)); err != nil {
		t.Fatalf("tune: %v", err)
	}
	blob, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep tune.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	// The default pack codec always leads the candidate list, ahead of
	// the two -candidates specs.
	if len(rep.Frames) != 4 || len(rep.Candidates) != 3 {
		t.Fatalf("report shape: %d frames, %d candidates", len(rep.Frames), len(rep.Candidates))
	}
	chosen := map[string]bool{}
	for _, f := range rep.Frames {
		chosen[f.Chosen] = true
	}
	if len(chosen) != 2 {
		t.Errorf("assignment not mixed: %v", chosen)
	}
	if rep.AssignedBytes > rep.BestUniformBytes {
		t.Errorf("assigned %d > best uniform %d", rep.AssignedBytes, rep.BestUniformBytes)
	}
}

func TestPackAutoProducesMixedStore(t *testing.T) {
	dir := t.TempDir()
	inputs := tuneInputs(t, dir, 4)
	out := filepath.Join(dir, "auto.gbz")

	args := []string{"-shape", "16,16", "-auto",
		"-candidates", tuneCandidates, "-max-err", "1e-3", out}
	if err := runPack(append(args, inputs...)); err != nil {
		t.Fatalf("pack -auto: %v", err)
	}
	r, err := store.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.MixedCodec() {
		t.Fatalf("pack -auto wrote a uniform store: specs %v", r.Specs())
	}
	// Every frame decodes under its own codec, bit-exact vs that codec's
	// direct round trip.
	for i := 0; i < r.Len(); i++ {
		coder, err := r.FrameCoder(i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Decompress(i)
		if err != nil {
			t.Fatal(err)
		}
		in, err := readTensor(inputs[r.Info(i).Label], []int{16, 16})
		if err != nil {
			t.Fatal(err)
		}
		c, err := coder.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		want, err := coder.Decompress(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.MaxAbsDiff(want) != 0 {
			t.Errorf("frame %d differs from direct %s round trip", i, r.FrameSpec(i))
		}
	}
	// inspect renders the mixed store (specs line + per-frame column).
	if err := runInspect([]string{out}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
}

func TestPackAutoSharded(t *testing.T) {
	dir := t.TempDir()
	inputs := tuneInputs(t, dir, 4)
	out := filepath.Join(dir, "auto.json")

	args := []string{"-shape", "16,16", "-auto", "-shards", "2",
		"-candidates", tuneCandidates, "-max-err", "1e-3", out}
	if err := runPack(append(args, inputs...)); err != nil {
		t.Fatalf("pack -auto -shards: %v", err)
	}
	ds, err := shard.Open(out, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if !ds.MixedCodec() {
		t.Fatalf("sharded pack -auto not mixed: specs %v", ds.Specs())
	}
	if err := runInspect([]string{out}); err != nil {
		t.Fatalf("inspect dataset: %v", err)
	}
}
