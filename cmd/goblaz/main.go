// Command goblaz is the compressor CLI: it compresses and decompresses
// files of raw little-endian float64 arrays and reports compression
// statistics. Backends are selected through the codec registry with
// -codec; the default is the paper's compressor configured by the
// individual flags.
//
//	goblaz compress   -shape 200,400 -block 16,16 -float float32 -index int16 in.f64 out.blz
//	goblaz compress   -shape 200,400 -codec zfp:rate=16 in.f64 out.zfp
//	goblaz decompress out.blz back.f64
//	goblaz info       out.blz
//	goblaz stats      -shape 200,400 -codec sz:mode=curvefit,tol=1e-4 in.f64
//	goblaz codecs     (list registered codecs)
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/scalar"
	"repro/internal/tensor"
	"repro/internal/transform"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "compress":
		err = runCompress(args)
	case "decompress":
		err = runDecompress(args)
	case "info":
		err = runInfo(args)
	case "stats":
		err = runStats(args)
	case "codecs":
		err = runCodecs(args)
	case "pack":
		err = runPack(args)
	case "tune":
		err = runTune(args)
	case "unpack":
		err = runUnpack(args)
	case "inspect":
		err = runInspect(args)
	case "serve":
		err = runServe(args)
	case "ingest":
		err = runIngest(args)
	case "query":
		err = runQuery(args)
	case "loadtest":
		err = runLoadtest(args)
	case "metrics":
		err = runMetrics(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "goblaz:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  goblaz compress   -shape N,M[,K] [-codec SPEC | -block ... -float T -index T -transform T -keep F] IN OUT
  goblaz decompress IN OUT
  goblaz info       IN
  goblaz stats      -shape N,M[,K] [options] IN
  goblaz codecs
  goblaz pack       -shape N,M[,K] [-codec SPEC] [-workers N] [-shards N]
                    [-auto [-candidates "SPEC;..."] [-max-err F] [-report JSON]] OUT FRAME...
  goblaz tune       -shape N,M[,K] [-candidates "SPEC;..."] [-max-err F] [-sample K]
                    [-w-ratio F] [-w-err F] [-w-lat F] [-report JSON] FRAME...
  goblaz unpack     [-frame LABEL] IN OUTPREFIX
  goblaz inspect    IN|MANIFEST|TOPOLOGY|URL
  goblaz serve      [-addr HOST:PORT] [-cache-bytes N] [-timeout D] [-debug-addr HOST:PORT]
                    [-max-concurrent N] [-max-queue N] [-queue-wait D]
                    [-metrics] [-log-json] [-slow-query D] [-topology CLUSTER.json]
                    [-ingest [NAME=]STORE [-ingest-spec SPEC] [-commit-every N]
                     [-commit-bytes B] [-commit-interval D] [-compact-bytes B]]
                    [NAME=]IN|MANIFEST|TOPOLOGY ...
  goblaz ingest     -shape N,M[,K] [-spec SPEC] [-label-start N] [-batch N]
                    [-commit-every N] [-commit-bytes B] [-timeout D] STORE|URL FRAME...
  goblaz loadtest   [-duration D] [-rps N] [-workers N] [-mix query=W,frame=W,region=W]
                    [-out BENCH.json] [-error-budget F] [-metrics-url URL]
                    [-cpuprofile F] [-memprofile F] IN|MANIFEST|TOPOLOGY|URL
  goblaz metrics    [-json] [-timeout D] URL
  goblaz query      [-labels GLOB] [-from I] [-to I] [-aggs LIST] [-reduce LIST]
                    [-metric KIND [-against LABEL] [-peak P]] [-region OFF:SHAPE] [-point IDX]
                    [-req JSON|@FILE|-] [-cache-bytes N] [-timeout D] IN|MANIFEST|TOPOLOGY|URL`)
	os.Exit(2)
}

type options struct {
	shape, block []int
	floatT       scalar.FloatType
	indexT       scalar.IndexType
	transformK   transform.Kind
	keep         float64
	codecSpec    string
	workers      int
	shards       int
}

// parseOptions parses the shared codec/shape flag set; extra (may be
// nil) registers subcommand-specific flags on the same set.
func parseOptions(name string, args []string, extra func(fs *flag.FlagSet)) (*options, []string, error) {
	o := &options{}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	if extra != nil {
		extra(fs)
	}
	shapeStr := fs.String("shape", "", "comma-separated array shape (required)")
	blockStr := fs.String("block", "", "comma-separated block shape (default 4 per dimension)")
	floatStr := fs.String("float", "float32", "float type: bfloat16|float16|float32|float64")
	indexStr := fs.String("index", "int16", "index type: int8|int16|int32|int64")
	trStr := fs.String("transform", "dct", "transform: dct|haar|identity")
	keep := fs.Float64("keep", 1, "fraction of low-frequency coefficients to keep (0,1]")
	codecSpec := fs.String("codec", "", `registry codec spec, e.g. "zfp:rate=16" or "sz:mode=curvefit,tol=1e-4" (overrides the goblaz flags)`)
	workers := fs.Int("workers", 0, "parallel compression workers for pack (default GOMAXPROCS)")
	shards := fs.Int("shards", 0, "pack into N shard stores plus a manifest instead of one store")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	o.codecSpec = *codecSpec
	o.workers = *workers
	o.shards = *shards
	var err error
	if *shapeStr != "" {
		o.shape, err = parseInts(*shapeStr)
		if err != nil {
			return nil, nil, err
		}
	}
	if *blockStr != "" {
		o.block, err = parseInts(*blockStr)
		if err != nil {
			return nil, nil, err
		}
	} else if o.shape != nil {
		o.block = make([]int, len(o.shape))
		for i := range o.block {
			o.block[i] = 4
		}
	}
	if o.floatT, err = scalar.ParseFloatType(*floatStr); err != nil {
		return nil, nil, err
	}
	if o.indexT, err = scalar.ParseIndexType(*indexStr); err != nil {
		return nil, nil, err
	}
	if o.transformK, err = transform.ParseKind(*trStr); err != nil {
		return nil, nil, err
	}
	o.keep = *keep
	return o, fs.Args(), nil
}

func (o *options) settings() (core.Settings, error) {
	s := core.Settings{
		BlockShape: o.block,
		FloatType:  o.floatT,
		IndexType:  o.indexT,
		Transform:  o.transformK,
	}
	if o.keep < 1 {
		mask, err := core.KeepLowFrequency(o.block, o.keep)
		if err != nil {
			return s, err
		}
		s.Mask = mask
	}
	return s, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in %q", p, s)
		}
		out[i] = v
	}
	return out, nil
}

func readTensor(path string, shape []int) (*tensor.Tensor, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	n := tensor.Prod(shape)
	if len(raw) != n*8 {
		return nil, fmt.Errorf("%s holds %d bytes, shape %v needs %d", path, len(raw), shape, n*8)
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return tensor.FromSlice(data, shape...), nil
}

func writeTensor(path string, t *tensor.Tensor) error {
	raw := make([]byte, t.Len()*8)
	for i, v := range t.Data() {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	return os.WriteFile(path, raw, 0o644)
}

// --- codec container: how non-default backends round-trip through files ---
//
// Files written with -codec are self-describing: a 4-byte magic, the
// big-endian uint16 length of the canonical codec spec, the spec string,
// then the codec's encoded payload. Decompression reconstructs the codec
// from the embedded spec via the registry, so no flags are needed. The
// default goblaz path keeps the paper's own serialization format (§IV-B),
// which is already self-describing.
var codecMagic = []byte("GCDC")

func writeCodecFile(path string, cd codec.Codec, payload []byte) error {
	spec := cd.Spec()
	if len(spec) > 0xFFFF {
		return fmt.Errorf("codec spec %q too long", spec)
	}
	buf := make([]byte, 0, len(codecMagic)+2+len(spec)+len(payload))
	buf = append(buf, codecMagic...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(spec)))
	buf = append(buf, spec...)
	buf = append(buf, payload...)
	return os.WriteFile(path, buf, 0o644)
}

// splitCodecFile recognizes the codec container and returns the embedded
// spec and payload; ok is false for legacy core-format files.
func splitCodecFile(blob []byte) (spec string, payload []byte, ok bool, err error) {
	if len(blob) < len(codecMagic) || string(blob[:len(codecMagic)]) != string(codecMagic) {
		return "", nil, false, nil
	}
	if len(blob) < len(codecMagic)+2 {
		return "", nil, false, fmt.Errorf("truncated codec header")
	}
	n := int(binary.BigEndian.Uint16(blob[len(codecMagic):]))
	rest := blob[len(codecMagic)+2:]
	if len(rest) < n {
		return "", nil, false, fmt.Errorf("truncated codec header")
	}
	return string(rest[:n]), rest[n:], true, nil
}

// lookupCoder resolves a spec to a codec that supports byte serialization.
func lookupCoder(spec string) (codec.Coder, error) {
	cd, err := codec.Lookup(spec)
	if err != nil {
		return nil, err
	}
	coder, ok := cd.(codec.Coder)
	if !ok {
		return nil, fmt.Errorf("codec %q does not support file serialization", cd.Name())
	}
	return coder, nil
}

func runCompress(args []string) error {
	o, rest, err := parseOptions("compress", args, nil)
	if err != nil {
		return err
	}
	if o.shape == nil || len(rest) != 2 {
		return fmt.Errorf("compress needs -shape and IN OUT paths")
	}
	t, err := readTensor(rest[0], o.shape)
	if err != nil {
		return err
	}
	if o.codecSpec != "" {
		coder, err := lookupCoder(o.codecSpec)
		if err != nil {
			return err
		}
		c, err := coder.Compress(t)
		if err != nil {
			return err
		}
		payload, err := coder.Encode(c)
		if err != nil {
			return err
		}
		if err := writeCodecFile(rest[1], coder, payload); err != nil {
			return err
		}
		fmt.Printf("compressed %d → %d bytes with %s (ratio %.2f)\n",
			t.Len()*8, len(payload), coder.Spec(), float64(t.Len()*8)/float64(len(payload)))
		return nil
	}
	s, err := o.settings()
	if err != nil {
		return err
	}
	c, err := core.NewCompressor(s)
	if err != nil {
		return err
	}
	a, err := c.Compress(t)
	if err != nil {
		return err
	}
	blob, err := core.Encode(a)
	if err != nil {
		return err
	}
	if err := os.WriteFile(rest[1], blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("compressed %d → %d bytes (ratio %.2f)\n",
		t.Len()*8, len(blob), float64(t.Len()*8)/float64(len(blob)))
	return nil
}

func runDecompress(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("decompress needs IN OUT paths")
	}
	blob, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	if spec, payload, ok, err := splitCodecFile(blob); err != nil {
		return err
	} else if ok {
		coder, err := lookupCoder(spec)
		if err != nil {
			return err
		}
		c, err := coder.Decode(payload)
		if err != nil {
			return err
		}
		t, err := coder.Decompress(c)
		if err != nil {
			return err
		}
		if err := writeTensor(args[1], t); err != nil {
			return err
		}
		fmt.Printf("decompressed to %v with %s (%d bytes)\n", t.Shape(), spec, t.Len()*8)
		return nil
	}
	a, err := core.Decode(blob)
	if err != nil {
		return err
	}
	c, err := core.NewCompressor(a.Settings)
	if err != nil {
		return err
	}
	t, err := c.Decompress(a)
	if err != nil {
		return err
	}
	if err := writeTensor(args[1], t); err != nil {
		return err
	}
	fmt.Printf("decompressed to %v (%d bytes)\n", t.Shape(), t.Len()*8)
	return nil
}

func runCodecs(args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("codecs takes no arguments")
	}
	for _, name := range codec.List() {
		cd, err := codec.Lookup(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s default spec: %s\n", name, cd.Spec())
	}
	return nil
}

func runInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info needs one path")
	}
	blob, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	if spec, payload, ok, err := splitCodecFile(blob); err != nil {
		return err
	} else if ok {
		fmt.Printf("codec:        %s\n", spec)
		fmt.Printf("payload:      %d bytes\n", len(payload))
		return nil
	}
	a, err := core.Decode(blob)
	if err != nil {
		return err
	}
	s := a.Settings
	fmt.Printf("shape:        %v\n", a.Shape)
	fmt.Printf("block shape:  %v\n", s.BlockShape)
	fmt.Printf("blocks:       %v (%d)\n", a.Blocks, a.NumBlocks())
	fmt.Printf("float type:   %v\n", s.FloatType)
	fmt.Printf("index type:   %v\n", s.IndexType)
	fmt.Printf("transform:    %v\n", s.Transform)
	fmt.Printf("kept/block:   %d of %d\n", a.Kept(), tensor.Prod(s.BlockShape))
	ratio, err := core.CompressionRatio(s, a.Shape, 64)
	if err != nil {
		return err
	}
	fmt.Printf("asymptotic ratio (vs float64): %.2f\n", ratio)
	return nil
}

func runStats(args []string) error {
	o, rest, err := parseOptions("stats", args, nil)
	if err != nil {
		return err
	}
	if o.shape == nil || len(rest) != 1 {
		return fmt.Errorf("stats needs -shape and one IN path")
	}
	if o.codecSpec != "" {
		cd, err := codec.Lookup(o.codecSpec)
		if err != nil {
			return err
		}
		t, err := readTensor(rest[0], o.shape)
		if err != nil {
			return err
		}
		c, err := cd.Compress(t)
		if err != nil {
			return err
		}
		back, err := cd.Decompress(c)
		if err != nil {
			return err
		}
		size := cd.EncodedSize(c)
		fmt.Printf("codec:             %s\n", cd.Spec())
		fmt.Printf("measured ratio:    %.2f (%d → %d bytes)\n",
			float64(t.Len()*8)/float64(size), t.Len()*8, size)
		fmt.Printf("L∞ error:          %.6g\n", t.MaxAbsDiff(back))
		fmt.Printf("RMSE:              %.6g\n", t.RMSE(back))
		fmt.Printf("value range:       [%.6g, %.6g]\n", t.Min(), t.Max())
		return nil
	}
	s, err := o.settings()
	if err != nil {
		return err
	}
	c, err := core.NewCompressor(s)
	if err != nil {
		return err
	}
	t, err := readTensor(rest[0], o.shape)
	if err != nil {
		return err
	}
	a, err := c.Compress(t)
	if err != nil {
		return err
	}
	back, err := c.Decompress(a)
	if err != nil {
		return err
	}
	ratio, err := core.CompressionRatio(s, o.shape, 64)
	if err != nil {
		return err
	}
	fmt.Printf("asymptotic ratio:  %.2f\n", ratio)
	fmt.Printf("L∞ error:          %.6g\n", t.MaxAbsDiff(back))
	fmt.Printf("RMSE:              %.6g\n", t.RMSE(back))
	fmt.Printf("value range:       [%.6g, %.6g]\n", t.Min(), t.Max())
	return nil
}
