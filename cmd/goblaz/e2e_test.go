package main

// End-to-end smoke: a real HTTP server on a random port, built exactly
// the way `goblaz serve` builds it (openMounts + httpapi.New), queried
// by the real CLI through the api.Client SDK — and the output must be
// byte-identical to the same CLI run against the store path. This is
// the acceptance check that the URL and the path are interchangeable.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/api/httpapi"
	"repro/internal/obs"
	"repro/internal/query"
)

// startServe mounts the store arguments the way runServe does, serves
// them on a random localhost port, and returns the base URL. openMounts
// prints mount lines, so it runs under captureStdout to keep test
// output clean.
func startServe(t *testing.T, storeArgs ...string) string {
	t.Helper()
	var url string
	if _, err := captureStdout(t, func() error {
		// A nonzero server cache, like runServe's default: the query
		// answer must not depend on server-side engine configuration.
		def, stores, datasets, closeAll, err := openMounts(storeArgs, 1<<20)
		if err != nil {
			return err
		}
		t.Cleanup(closeAll)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: httpapi.New(def, stores, httpapi.Options{Datasets: datasets})}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		url = "http://" + ln.Addr().String()
		return nil
	}); err != nil {
		t.Fatalf("serve: %v", err)
	}
	return url
}

func TestE2EClientVsLocal(t *testing.T) {
	path := packQueryStore(t)
	url := startServe(t, path)

	args := []string{
		"-aggs", "mean,variance,stddev,min,max,l2norm",
		"-metric", "mse", "-against", "0",
		"-region", "1,1:3,3", "-point", "2,2",
	}
	viaURL, err := captureStdout(t, func() error { return runQuery(append(args, url)) })
	if err != nil {
		t.Fatalf("query %s: %v", url, err)
	}
	viaPath, err := captureStdout(t, func() error { return runQuery(append(args, path)) })
	if err != nil {
		t.Fatalf("query %s: %v", path, err)
	}
	if len(viaURL) == 0 {
		t.Fatal("empty query output")
	}
	if !bytes.Equal(viaURL, viaPath) {
		t.Errorf("URL and path results differ:\n--- url ---\n%s\n--- path ---\n%s", viaURL, viaPath)
	}
}

func TestE2EInspectURLMatchesLocal(t *testing.T) {
	path := packQueryStore(t)
	url := startServe(t, path)
	viaURL, err := captureStdout(t, func() error { return runInspect([]string{url}) })
	if err != nil {
		t.Fatal(err)
	}
	viaPath, err := captureStdout(t, func() error { return runInspect([]string{path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaURL, viaPath) {
		t.Errorf("inspect differs:\n--- url ---\n%s\n--- path ---\n%s", viaURL, viaPath)
	}
}

func TestE2EMultiStoreMounts(t *testing.T) {
	a, b := packQueryStore(t), packQueryStore(t)
	url := startServe(t, "first="+a, "second="+b)
	for _, target := range []string{url, url + "/v1/stores/first", url + "/v1/stores/second"} {
		blob, err := captureStdout(t, func() error {
			return runQuery([]string{"-aggs", "mean", target})
		})
		if err != nil {
			t.Errorf("query %s: %v", target, err)
		}
		if len(blob) == 0 {
			t.Errorf("query %s printed nothing", target)
		}
	}
}

func TestE2EDatasetMountVsManifest(t *testing.T) {
	// A served dataset answers identically to the manifest on disk —
	// over the default mount and the /v1/datasets/{name} mount alike.
	manifest, _ := packShardedDataset(t, 5, 3)
	url := startServe(t, "runs="+manifest)

	args := []string{"-aggs", "mean,min", "-reduce", "mean,l2norm"}
	viaPath, err := captureStdout(t, func() error { return runQuery(append(args, manifest)) })
	if err != nil {
		t.Fatalf("query manifest: %v", err)
	}
	for _, target := range []string{url, url + "/v1/datasets/runs"} {
		viaURL, err := captureStdout(t, func() error { return runQuery(append(args, target)) })
		if err != nil {
			t.Fatalf("query %s: %v", target, err)
		}
		if !bytes.Equal(viaURL, viaPath) {
			t.Errorf("%s and manifest results differ:\n--- url ---\n%s\n--- path ---\n%s", target, viaURL, viaPath)
		}
	}
}

func TestE2EQueryTimeoutExpires(t *testing.T) {
	path := packQueryStore(t)
	err := runQuery([]string{"-timeout", "1ns", "-aggs", "mean", path})
	if api.CodeOf(err) != api.CodeCanceled {
		t.Errorf("expired -timeout returned %v, want a canceled error", err)
	}
}

func TestE2EQueryBadURL(t *testing.T) {
	// A refused connection surfaces as a classified error, not a panic
	// or a silent empty result.
	err := runQuery([]string{"-aggs", "mean", "-timeout", "100ms", "http://127.0.0.1:1"})
	if err == nil {
		t.Fatal("querying a dead server should fail")
	}
}

// startServeMetrics is startServe with admission control and /metrics
// enabled on the main listener — the full production middleware stack.
func startServeMetrics(t *testing.T, storeArgs ...string) string {
	t.Helper()
	var url string
	if _, err := captureStdout(t, func() error {
		def, stores, datasets, closeAll, err := openMounts(storeArgs, 1<<20)
		if err != nil {
			return err
		}
		t.Cleanup(closeAll)
		def = limitMounts(def, stores, datasets, api.LimitOptions{MaxConcurrent: 4, MaxQueue: 4})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: httpapi.New(def, stores, httpapi.Options{
			Datasets:      datasets,
			ExposeMetrics: true,
		})}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		url = "http://" + ln.Addr().String()
		return nil
	}); err != nil {
		t.Fatalf("serve: %v", err)
	}
	return url
}

// TestE2EMetricsScrape drives traffic through every instrumented layer
// — HTTP, admission control, query engine, shard scatter, codec, store
// reads — then scrapes GET /metrics and checks both that the exposition
// is well-formed and that each layer's families moved.
func TestE2EMetricsScrape(t *testing.T) {
	path := packQueryStore(t)
	manifest, _ := packShardedDataset(t, 5, 3)
	url := startServeMetrics(t, path, "runs="+manifest)

	ctx := context.Background()
	for _, target := range []string{url, url + "/v1/datasets/runs"} {
		client, err := api.NewClient(target, api.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Query(ctx, &query.Request{Aggregates: []string{query.AggMean, query.AggMax}}); err != nil {
			t.Fatalf("query %s: %v", target, err)
		}
		if _, err := client.Frame(ctx, 0); err != nil {
			t.Fatalf("frame %s: %v", target, err)
		}
	}

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != httpapi.PromContentType {
		t.Errorf("content type %q, want %q", ct, httpapi.PromContentType)
	}

	// Exposition validity: every sample line parses, belongs to a family
	// announced by a preceding # TYPE line, and carries a finite value.
	// The label block is matched greedily: label values may themselves
	// contain braces (route="/v1/frames/{label}").
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (-?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|[+-]Inf|NaN)$`)
	typed := map[string]bool{}
	values := map[string]float64{} // family name (suffixes stripped) → summed value
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed exposition line: %q", line)
			continue
		}
		name := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && typed[base] {
				name = base
				break
			}
		}
		if !typed[name] {
			t.Errorf("sample %q has no preceding # TYPE", m[1])
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Errorf("bad value in %q: %v", line, err)
		}
		if !strings.HasSuffix(m[1], "_bucket") { // buckets repeat cumulative counts
			values[name] += v
		}
	}

	// One family per instrumented layer must have moved.
	for _, fam := range []string{
		"goblaz_http_requests_total",       // httpapi middleware
		"goblaz_limit_admitted_total",      // admission control
		"goblaz_query_requests_total",      // query engine
		"goblaz_shard_queries_total",       // scatter-gather
		"goblaz_codec_op_total",            // codec ops
		"goblaz_store_payload_reads_total", // store read path
		"goblaz_trace_span_seconds",        // span recording
	} {
		if values[fam] <= 0 {
			t.Errorf("family %s is zero or absent after traffic; exposition:\n%s", fam, body)
		}
	}

	// The JSON snapshot endpoint serves the same registry.
	jresp, err := http.Get(url + "/v1/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /v1/debug/metrics: %v", err)
	}
	if len(snap.Metrics) == 0 {
		t.Error("JSON snapshot holds no metrics")
	}
	if flat := snap.Flatten(); flat["goblaz_http_requests_total{class=2xx,route=/v1/query}"] <= 0 {
		t.Errorf("flattened snapshot missing query requests; keys: %v", flat)
	}
}
