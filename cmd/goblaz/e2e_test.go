package main

// End-to-end smoke: a real HTTP server on a random port, built exactly
// the way `goblaz serve` builds it (openMounts + httpapi.New), queried
// by the real CLI through the api.Client SDK — and the output must be
// byte-identical to the same CLI run against the store path. This is
// the acceptance check that the URL and the path are interchangeable.

import (
	"bytes"
	"net"
	"net/http"
	"testing"

	"repro/internal/api"
	"repro/internal/api/httpapi"
)

// startServe mounts the store arguments the way runServe does, serves
// them on a random localhost port, and returns the base URL. openMounts
// prints mount lines, so it runs under captureStdout to keep test
// output clean.
func startServe(t *testing.T, storeArgs ...string) string {
	t.Helper()
	var url string
	if _, err := captureStdout(t, func() error {
		// A nonzero server cache, like runServe's default: the query
		// answer must not depend on server-side engine configuration.
		def, stores, datasets, closeAll, err := openMounts(storeArgs, 1<<20)
		if err != nil {
			return err
		}
		t.Cleanup(closeAll)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: httpapi.New(def, stores, httpapi.Options{Datasets: datasets})}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		url = "http://" + ln.Addr().String()
		return nil
	}); err != nil {
		t.Fatalf("serve: %v", err)
	}
	return url
}

func TestE2EClientVsLocal(t *testing.T) {
	path := packQueryStore(t)
	url := startServe(t, path)

	args := []string{
		"-aggs", "mean,variance,stddev,min,max,l2norm",
		"-metric", "mse", "-against", "0",
		"-region", "1,1:3,3", "-point", "2,2",
	}
	viaURL, err := captureStdout(t, func() error { return runQuery(append(args, url)) })
	if err != nil {
		t.Fatalf("query %s: %v", url, err)
	}
	viaPath, err := captureStdout(t, func() error { return runQuery(append(args, path)) })
	if err != nil {
		t.Fatalf("query %s: %v", path, err)
	}
	if len(viaURL) == 0 {
		t.Fatal("empty query output")
	}
	if !bytes.Equal(viaURL, viaPath) {
		t.Errorf("URL and path results differ:\n--- url ---\n%s\n--- path ---\n%s", viaURL, viaPath)
	}
}

func TestE2EInspectURLMatchesLocal(t *testing.T) {
	path := packQueryStore(t)
	url := startServe(t, path)
	viaURL, err := captureStdout(t, func() error { return runInspect([]string{url}) })
	if err != nil {
		t.Fatal(err)
	}
	viaPath, err := captureStdout(t, func() error { return runInspect([]string{path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaURL, viaPath) {
		t.Errorf("inspect differs:\n--- url ---\n%s\n--- path ---\n%s", viaURL, viaPath)
	}
}

func TestE2EMultiStoreMounts(t *testing.T) {
	a, b := packQueryStore(t), packQueryStore(t)
	url := startServe(t, "first="+a, "second="+b)
	for _, target := range []string{url, url + "/v1/stores/first", url + "/v1/stores/second"} {
		blob, err := captureStdout(t, func() error {
			return runQuery([]string{"-aggs", "mean", target})
		})
		if err != nil {
			t.Errorf("query %s: %v", target, err)
		}
		if len(blob) == 0 {
			t.Errorf("query %s printed nothing", target)
		}
	}
}

func TestE2EDatasetMountVsManifest(t *testing.T) {
	// A served dataset answers identically to the manifest on disk —
	// over the default mount and the /v1/datasets/{name} mount alike.
	manifest, _ := packShardedDataset(t, 5, 3)
	url := startServe(t, "runs="+manifest)

	args := []string{"-aggs", "mean,min", "-reduce", "mean,l2norm"}
	viaPath, err := captureStdout(t, func() error { return runQuery(append(args, manifest)) })
	if err != nil {
		t.Fatalf("query manifest: %v", err)
	}
	for _, target := range []string{url, url + "/v1/datasets/runs"} {
		viaURL, err := captureStdout(t, func() error { return runQuery(append(args, target)) })
		if err != nil {
			t.Fatalf("query %s: %v", target, err)
		}
		if !bytes.Equal(viaURL, viaPath) {
			t.Errorf("%s and manifest results differ:\n--- url ---\n%s\n--- path ---\n%s", target, viaURL, viaPath)
		}
	}
}

func TestE2EQueryTimeoutExpires(t *testing.T) {
	path := packQueryStore(t)
	err := runQuery([]string{"-timeout", "1ns", "-aggs", "mean", path})
	if api.CodeOf(err) != api.CodeCanceled {
		t.Errorf("expired -timeout returned %v, want a canceled error", err)
	}
}

func TestE2EQueryBadURL(t *testing.T) {
	// A refused connection surfaces as a classified error, not a panic
	// or a silent empty result.
	err := runQuery([]string{"-aggs", "mean", "-timeout", "100ms", "http://127.0.0.1:1"})
	if err == nil {
		t.Fatal("querying a dead server should fail")
	}
}
