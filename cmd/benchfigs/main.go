// Command benchfigs regenerates the paper's tables and figures as text
// series. Each -fig selects one figure of the evaluation:
//
//	benchfigs -fig 2          PyBlaz-vs-Blaz operation time
//	benchfigs -fig 3          compression/decompression vs the ZFP-like baseline
//	benchfigs -fig 4          shallow-water precision-difference experiment
//	benchfigs -fig 5          error-vs-settings study on MRI-like volumes
//	benchfigs -fig 6          fission L2 and Wasserstein time series
//	benchfigs -fig 7          per-operation timing panel
//	benchfigs -fig all        everything
//
// Use -quick for smaller sweeps (for CI or smoke tests).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/figures"
	"repro/internal/scalar"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2, 3, 4, 5, 6, 7 or all")
	quick := flag.Bool("quick", false, "smaller sweeps for smoke testing")
	flag.Parse()

	run := func(name string, fn func(quick bool)) {
		if *fig == "all" || *fig == name {
			fn(*quick)
		}
	}
	run("table1", table1)
	run("ablation", ablation)
	run("2", fig2)
	run("3", fig3)
	run("4", fig4)
	run("5", fig5)
	run("6", fig6)
	run("7", fig7)
	switch *fig {
	case "table1", "ablation", "2", "3", "4", "5", "6", "7", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func table1(quick bool) {
	fmt.Println("== Table I: compressed-space operations, measured error vs decompress-then-operate ==")
	trials := 10
	if quick {
		trials = 3
	}
	rows, err := figures.Table1(1, trials)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := table()
	fmt.Fprintln(w, "operation\tpaper error source\tmeasured worst error")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.3g\n", r.Operation, r.PaperErrorSource, r.MeasuredError)
	}
	w.Flush()
	fmt.Println()
}

func ablation(quick bool) {
	fmt.Println("== Ablation: pruning keep fraction (8³ blocks, float32, int8, MRI-like volume) ==")
	fractions := figures.DefaultPruningFractions
	if quick {
		fractions = fractions[:3]
	}
	rows, err := figures.PruningSweep(1, fractions)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := table()
	fmt.Fprintln(w, "keep fraction\tratio\tRMSE\tL∞")
	for _, r := range rows {
		fmt.Fprintf(w, "%.4f\t%.2f\t%.4g\t%.4g\n", r.KeepFraction, r.Ratio, r.RMSE, r.Linf)
	}
	w.Flush()
	fmt.Println()

	fmt.Println("== Ablation: orthonormal transform (same settings; ratio is transform-independent) ==")
	trows, err := figures.TransformSweep(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w = table()
	fmt.Fprintln(w, "transform\tRMSE\tL∞")
	for _, r := range trows {
		fmt.Fprintf(w, "%v\t%.4g\t%.4g\n", r.Transform, r.RMSE, r.Linf)
	}
	w.Flush()
	fmt.Println()
}

func fig2(quick bool) {
	fmt.Println("== Fig. 2: goblaz vs Blaz operation time (seconds) ==")
	sizes := figures.DefaultFig2Sizes
	reps := 3
	if quick {
		sizes = []int{8, 32, 128}
		reps = 1
	}
	rows := figures.Fig2(sizes, reps)
	w := table()
	fmt.Fprintln(w, "size\tgoblaz compress\tgoblaz decompress\tgoblaz add\tgoblaz multiply\tblaz compress\tblaz decompress\tblaz add\tblaz multiply")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\n",
			r.Size,
			r.GoblazCompress.Seconds(), r.GoblazDecompress.Seconds(),
			r.GoblazAdd.Seconds(), r.GoblazMultiply.Seconds(),
			r.BlazCompress.Seconds(), r.BlazDecompress.Seconds(),
			r.BlazAdd.Seconds(), r.BlazMultiply.Seconds())
	}
	w.Flush()
	fmt.Println()
}

func fig3(quick bool) {
	for _, dims := range []int{2, 3} {
		fmt.Printf("== Fig. 3: %d-D compression/decompression time vs zfpsim (seconds) ==\n", dims)
		sizes := figures.DefaultFig3Sizes2D
		if dims == 3 {
			sizes = figures.DefaultFig3Sizes3D
		}
		reps := 3
		if quick {
			sizes = sizes[:3]
			reps = 1
		}
		rows := figures.Fig3(dims, sizes, reps)
		w := table()
		fmt.Fprintln(w, "size\tzfp r8 comp\tzfp r4 comp\tzfp r2 comp\tzfp r8 dec\tzfp r4 dec\tzfp r2 dec\tgoblaz r8 comp\tgoblaz r4 comp\tgoblaz r8 dec\tgoblaz r4 dec")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\n",
				r.Size,
				r.ZfpCompress[0].Seconds(), r.ZfpCompress[1].Seconds(), r.ZfpCompress[2].Seconds(),
				r.ZfpDecompress[0].Seconds(), r.ZfpDecompress[1].Seconds(), r.ZfpDecompress[2].Seconds(),
				r.GoblazCompress[0].Seconds(), r.GoblazCompress[1].Seconds(),
				r.GoblazDecompress[0].Seconds(), r.GoblazDecompress[1].Seconds())
		}
		w.Flush()
		fmt.Println()
	}
}

func fig4(quick bool) {
	fmt.Println("== Fig. 4: shallow-water FP16 vs FP32 difference, uncompressed vs compressed space ==")
	ny, nx, steps := 200, 400, 5000
	if quick {
		ny, nx, steps = 48, 96, 1500
	}
	res, err := figures.Fig4(ny, nx, steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("domain %dx%d, %d steps\n", ny, nx, steps)
	fmt.Printf("FP32 surface amplitude (L-inf):      %.6g\n", res.HeightF32.AbsMax())
	fmt.Printf("FP16-FP32 perturbation (L-inf):      %.6g\n", res.PerturbationLinf)
	fmt.Printf("compressed-diff agreement (L-inf):   %.6g\n", res.AgreementLinf)
	fmt.Printf("perturbation visible in compressed space: %v\n",
		res.AgreementLinf < res.PerturbationLinf)
	fmt.Println()
}

func fig5(quick bool) {
	fmt.Println("== Fig. 5: error of compressed-space scalar functions on MRI-like volumes ==")
	count, h, wdt := 12, 128, 128
	if quick {
		count, h, wdt = 4, 64, 64
	}
	rows := figures.Fig5(1, count, h, wdt)
	w := table()
	fmt.Fprintln(w, "blocks\tfloat\tindex\tratio\tmean MAE\tmean rel\tvar MAE\tvar rel\tL2 MAE\tL2 rel\tSSIM MAE\tNaNs")
	for _, r := range rows {
		fmt.Fprintf(w, "%v\t%v\t%v\t%.2f\t%.3g\t%.3g\t%.3g\t%.3g\t%.3g\t%.3g\t%.3g\t%d\n",
			r.Config.BlockShape, r.Config.FloatType, r.Config.IndexType, r.Ratio,
			r.MeanAbs, r.MeanRel, r.VarianceAbs, r.VarianceRel,
			r.L2Abs, r.L2Rel, r.SSIMAbs, r.NaNs)
	}
	w.Flush()
	fmt.Println()
}

func fig6(quick bool) {
	fmt.Println("== Fig. 6: fission adjacent-time-step distances (block 16^3, float32, int16) ==")
	nz, ny, nx := 40, 40, 66
	if quick {
		nz, ny, nx = 16, 16, 33
	}
	res, err := figures.Fig6(1, nz, ny, nx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := table()
	header := "steps\tL2 uncompressed\tL2 decompressed\tL2 compressed"
	orders := figures.Fig6Orders
	for _, p := range orders {
		header += fmt.Sprintf("\tW(p=%g)", p)
	}
	fmt.Fprintln(w, header)
	for _, tr := range res.Transitions {
		row := fmt.Sprintf("%d→%d\t%.4f\t%.4f\t%.4f", tr.FromStep, tr.ToStep,
			tr.L2Uncompressed, tr.L2Decompressed, tr.L2Compressed)
		keys := make([]float64, 0, len(tr.Wasserstein))
		for p := range tr.Wasserstein {
			keys = append(keys, p)
		}
		sort.Float64s(keys)
		for _, p := range keys {
			row += fmt.Sprintf("\t%.3e", tr.Wasserstein[p])
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
	fmt.Printf("max |L2 compressed − L2 uncompressed| = %.4f (mean L2 %.2f)\n",
		res.MaxL2Error, res.MeanL2)
	if i := res.ScissionTransitionIndex(); i >= 0 {
		fmt.Printf("scission transition: %d→%d\n",
			res.Transitions[i].FromStep, res.Transitions[i].ToStep)
	}
	fmt.Println()
}

func fig7(quick bool) {
	fmt.Println("== Fig. 7: per-operation time, 3-D cubic arrays, block 4 (seconds) ==")
	sizes := figures.DefaultFig7Sizes
	fts := figures.Fig7FloatTypes
	its := figures.Fig7IndexTypes
	reps := 3
	if quick {
		sizes = []int{8, 32}
		fts = []scalar.FloatType{scalar.Float32}
		its = []scalar.IndexType{scalar.Int16}
		reps = 1
	}
	rows := figures.Fig7(sizes, fts, its, reps)
	w := table()
	header := "float\tindex\tsize"
	for _, op := range figures.Fig7Ops {
		header += "\t" + string(op)
	}
	fmt.Fprintln(w, header)
	for _, r := range rows {
		row := fmt.Sprintf("%v\t%v\t%d", r.FloatType, r.IndexType, r.Size)
		for _, op := range figures.Fig7Ops {
			row += fmt.Sprintf("\t%.3g", r.Times[op].Seconds())
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
	fmt.Println()
}
