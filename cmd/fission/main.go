// Command fission runs the scission-detection experiment of §V-C: it
// generates the synthetic plutonium-density time series, compresses every
// frame, and locates the nuclear scission from compressed data alone using
// the L2 norm of compressed-space differences and the approximate
// Wasserstein distance at increasing orders.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/data"
	"repro/internal/figures"
)

func main() {
	nz := flag.Int("nz", 40, "grid z size")
	ny := flag.Int("ny", 40, "grid y size")
	nx := flag.Int("nx", 66, "grid x size (long axis)")
	seed := flag.Int64("seed", 1, "data seed")
	flag.Parse()

	res, err := figures.Fig6(*seed, *nz, *ny, *nx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fission:", err)
		os.Exit(1)
	}

	fmt.Printf("fission series on %dx%dx%d, %d time steps, block 16^3/float32/int16\n\n",
		*nz, *ny, *nx, len(data.FissionTimeSteps))

	fmt.Println("compressed-space L2 difference per transition:")
	maxL2 := 0.0
	for _, tr := range res.Transitions {
		if tr.L2Compressed > maxL2 {
			maxL2 = tr.L2Compressed
		}
	}
	for _, tr := range res.Transitions {
		bar := strings.Repeat("█", int(40*tr.L2Compressed/maxL2))
		fmt.Printf("  %d→%d\t%8.2f %s\n", tr.FromStep, tr.ToStep, tr.L2Compressed, bar)
	}
	fmt.Printf("\nmax |compressed − uncompressed| L2 error: %.4f (mean L2 %.2f)\n\n",
		res.MaxL2Error, res.MeanL2)

	for _, p := range []float64{1, 68} {
		fmt.Printf("approximate Wasserstein distance, p = %g:\n", p)
		maxW := 0.0
		for _, tr := range res.Transitions {
			if tr.Wasserstein[p] > maxW {
				maxW = tr.Wasserstein[p]
			}
		}
		for _, tr := range res.Transitions {
			bar := ""
			if maxW > 0 {
				bar = strings.Repeat("█", int(40*tr.Wasserstein[p]/maxW))
			}
			fmt.Printf("  %d→%d\t%10.3e %s\n", tr.FromStep, tr.ToStep, tr.Wasserstein[p], bar)
		}
		fmt.Println()
	}

	si := res.ScissionTransitionIndex()
	best := 0
	for i, tr := range res.Transitions {
		if tr.L2Compressed > res.Transitions[best].L2Compressed {
			best = i
			_ = tr
		}
	}
	fmt.Printf("detected scission: between steps %d and %d (ground truth %d→692)\n",
		res.Transitions[best].FromStep, res.Transitions[best].ToStep, data.ScissionAfterStep)
	if best == si {
		fmt.Println("detection matches the known scission point.")
	} else {
		fmt.Println("WARNING: detection disagrees with the known scission point.")
	}
}
